"""Parallel-kernel reference generators: stencil, reduction, spinlocks.

The synthetic model (:mod:`repro.workloads.synthetic`) draws references
from distributions; these generators instead emit the access patterns of
archetypal shared-memory *programs*, giving the protocol comparisons the
shapes real multiprocessor software produces:

* :func:`stencil_trace` -- an iterative SPMD stencil: each processor
  sweeps its own row-block and reads its neighbours' boundary lines each
  iteration (nearest-neighbour sharing -- also the natural fit for the
  cluster hierarchy);
* :func:`reduction_trace` -- parallel partial sums, then a tree combine
  into shared cells (log-depth write sharing);
* :func:`spinlock_trace` -- mutual exclusion by test-and-set (``tas``) or
  test-and-test-and-set (``ttas``).  The classic coherence lesson: TAS
  spins with *writes*, hammering the bus with invalidations, while TTAS
  spins with *reads* that hit locally in every waiter's cache until the
  release, so its traffic is per-handoff instead of per-spin.
"""

from __future__ import annotations

from repro.workloads.trace import Op, ReferenceRecord, Trace

__all__ = ["stencil_trace", "reduction_trace", "spinlock_trace"]


def _unit(index: int) -> str:
    return f"cpu{index}"


def stencil_trace(
    processors: int = 4,
    iterations: int = 4,
    lines_per_processor: int = 8,
    line_size: int = 32,
) -> Trace:
    """Iterative nearest-neighbour stencil over a 1-D block partition.

    Per iteration, processor ``p``: reads its block, reads the last line
    of ``p-1``'s block and the first line of ``p+1``'s block (the halo),
    then writes its own block.
    """
    if processors < 1 or iterations < 1 or lines_per_processor < 1:
        raise ValueError("degenerate stencil")
    trace = Trace()

    def block_line(processor: int, line: int) -> int:
        return (processor * lines_per_processor + line) * line_size

    for _ in range(iterations):
        for p in range(processors):
            unit = _unit(p)
            for line in range(lines_per_processor):
                trace.append(
                    ReferenceRecord(unit, Op.READ, block_line(p, line))
                )
            if p > 0:
                trace.append(
                    ReferenceRecord(
                        unit,
                        Op.READ,
                        block_line(p - 1, lines_per_processor - 1),
                    )
                )
            if p < processors - 1:
                trace.append(
                    ReferenceRecord(unit, Op.READ, block_line(p + 1, 0))
                )
            for line in range(lines_per_processor):
                trace.append(
                    ReferenceRecord(unit, Op.WRITE, block_line(p, line))
                )
    return trace


def reduction_trace(
    processors: int = 4,
    elements_per_processor: int = 16,
    line_size: int = 32,
) -> Trace:
    """Parallel sum: local accumulation, then a binary combining tree.

    Partial sums live one per line (no false sharing); each combining
    round has the left child of every surviving pair read its partner's
    cell and write its own.
    """
    if processors < 1 or processors & (processors - 1):
        raise ValueError("processors must be a power of two")
    trace = Trace()
    data_base = processors  # line index where the input data starts

    def partial_line(processor: int) -> int:
        return processor * line_size

    for p in range(processors):
        unit = _unit(p)
        for element in range(elements_per_processor):
            address = (
                data_base + p * elements_per_processor + element
            ) * line_size
            trace.append(ReferenceRecord(unit, Op.READ, address))
        trace.append(ReferenceRecord(unit, Op.WRITE, partial_line(p)))

    stride = 1
    while stride < processors:
        for p in range(0, processors, 2 * stride):
            unit = _unit(p)
            trace.append(
                ReferenceRecord(unit, Op.READ, partial_line(p + stride))
            )
            trace.append(ReferenceRecord(unit, Op.READ, partial_line(p)))
            trace.append(ReferenceRecord(unit, Op.WRITE, partial_line(p)))
        stride *= 2
    return trace


def spinlock_trace(
    kind: str = "ttas",
    processors: int = 4,
    acquisitions_per_processor: int = 4,
    spins_while_waiting: int = 6,
    critical_section_lines: int = 2,
    line_size: int = 32,
) -> Trace:
    """Lock contention under test-and-set or test-and-test-and-set.

    The generator plays out round-robin lock handoffs: while processor
    ``h`` holds the lock (reading and writing the protected data), every
    other processor spins ``spins_while_waiting`` times --

    * ``tas``: each spin is an atomic RMW, i.e. a *write* to the lock
      line (plus the read half of the RMW);
    * ``ttas``: each spin is a plain *read* of the lock line; only when
      the lock is released does a waiter attempt one RMW.

    The lock occupies line 0; the protected data follows.
    """
    if kind not in ("tas", "ttas"):
        raise ValueError(f"kind must be 'tas' or 'ttas', got {kind!r}")
    trace = Trace()
    lock = 0
    data_base = line_size  # line 1 onward

    total_handoffs = processors * acquisitions_per_processor
    for handoff in range(total_handoffs):
        holder = handoff % processors
        holder_unit = _unit(holder)
        # Acquisition: one successful RMW by the next holder.
        trace.append(ReferenceRecord(holder_unit, Op.READ, lock))
        trace.append(ReferenceRecord(holder_unit, Op.WRITE, lock))
        # Critical section.
        for line in range(critical_section_lines):
            address = data_base + line * line_size
            trace.append(ReferenceRecord(holder_unit, Op.READ, address))
            trace.append(ReferenceRecord(holder_unit, Op.WRITE, address))
        # Everyone else spins while the lock is held.  Spin rounds are
        # interleaved across waiters, as concurrent spinning is: under
        # TAS each waiter's RMW steals the line from the previous
        # waiter's, so *every* spin is a bus transfer.
        for _ in range(spins_while_waiting):
            for waiter in range(processors):
                if waiter == holder:
                    continue
                unit = _unit(waiter)
                if kind == "tas":
                    trace.append(ReferenceRecord(unit, Op.READ, lock))
                    trace.append(ReferenceRecord(unit, Op.WRITE, lock))
                else:
                    trace.append(ReferenceRecord(unit, Op.READ, lock))
        # Release: the holder writes the lock free.
        trace.append(ReferenceRecord(holder_unit, Op.WRITE, lock))
    return trace

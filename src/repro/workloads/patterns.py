"""Named sharing patterns: the workload archetypes behind the paper's
performance discussion.

Each factory returns a finite :class:`~repro.workloads.trace.Trace`.
They correspond to the regimes in which the section 5.2 choices differ:

* :func:`ping_pong` -- two (or more) processors alternately *write* the
  same line: broadcast-update keeps everyone current with one transaction
  per write; invalidate forces a miss per handoff;
* :func:`producer_consumer` -- one writer, many readers: the showcase for
  updates (readers stay valid) vs invalidates (readers re-miss);
* :func:`read_mostly` -- widely read, rarely written data;
* :func:`migratory` -- lock-protected data used read-then-write by one
  processor at a time: the showcase for invalidation (updates are wasted
  on caches that will not touch the line again);
* :func:`private_streams` -- disjoint working sets (no sharing at all):
  the copy-back vs write-through bus-traffic gap in its purest form.
"""

from __future__ import annotations

from typing import Sequence

from repro.workloads.trace import Op, ReferenceRecord, Trace

__all__ = [
    "ping_pong",
    "producer_consumer",
    "read_mostly",
    "migratory",
    "private_streams",
]


def _units(n: int) -> list[str]:
    return [f"cpu{i}" for i in range(n)]


def ping_pong(
    rounds: int = 100,
    processors: int = 2,
    address: int = 0,
) -> Trace:
    """Processors take turns writing (then reading) one shared line."""
    units = _units(processors)
    trace = Trace()
    for round_index in range(rounds):
        unit = units[round_index % processors]
        trace.append(ReferenceRecord(unit, Op.WRITE, address))
        trace.append(ReferenceRecord(unit, Op.READ, address))
    return trace

def producer_consumer(
    items: int = 50,
    consumers: int = 3,
    address: int = 0,
    reads_per_item: int = 1,
) -> Trace:
    """cpu0 produces (writes); every consumer reads each item."""
    trace = Trace()
    consumer_units = [f"cpu{i + 1}" for i in range(consumers)]
    for _ in range(items):
        trace.append(ReferenceRecord("cpu0", Op.WRITE, address))
        for unit in consumer_units:
            for _ in range(reads_per_item):
                trace.append(ReferenceRecord(unit, Op.READ, address))
    return trace


def read_mostly(
    references: int = 400,
    processors: int = 4,
    writes_every: int = 50,
    address: int = 0,
) -> Trace:
    """Everyone reads a shared line; an occasional write perturbs it."""
    units = _units(processors)
    trace = Trace()
    for i in range(references):
        unit = units[i % processors]
        if writes_every and i % writes_every == writes_every - 1:
            trace.append(ReferenceRecord(unit, Op.WRITE, address))
        else:
            trace.append(ReferenceRecord(unit, Op.READ, address))
    return trace


def migratory(
    handoffs: int = 50,
    processors: int = 4,
    accesses_per_visit: int = 4,
    address: int = 0,
) -> Trace:
    """Lock-style migration: each visitor reads then writes repeatedly,
    then the line moves to the next processor."""
    units = _units(processors)
    trace = Trace()
    for h in range(handoffs):
        unit = units[h % processors]
        for _ in range(accesses_per_visit):
            trace.append(ReferenceRecord(unit, Op.READ, address))
            trace.append(ReferenceRecord(unit, Op.WRITE, address))
    return trace


def private_streams(
    references_per_processor: int = 100,
    processors: int = 4,
    blocks_per_processor: int = 4,
    line_size: int = 32,
    write_fraction_pattern: Sequence[Op] = (Op.READ, Op.READ, Op.WRITE),
) -> Trace:
    """Disjoint per-processor working sets; no line is ever shared."""
    units = _units(processors)
    trace = Trace()
    for i in range(references_per_processor):
        for p, unit in enumerate(units):
            block = i % blocks_per_processor
            address = (p * blocks_per_processor + block) * line_size
            op = write_fraction_pattern[i % len(write_fraction_pattern)]
            trace.append(ReferenceRecord(unit, op, address))
    return trace

"""Byte-granular workloads with spatial locality.

The block-pool model in :mod:`repro.workloads.synthetic` works at line
granularity, which is right for protocol comparisons but useless for the
**line-size selection** question of section 5.1 (the paper defers to
[Smit85c] for "the data and methodology to be used for such a
recommendation").  Line-size selection is a trade-off only visible with
byte addresses:

* *spatial locality* -- sequential scans benefit from larger lines (one
  miss fetches more future hits);
* *transfer cost* -- larger lines move more words per miss;
* *false sharing* -- independent variables co-resident in one large line
  ping-pong between writers that never share data at all.

:class:`SpatialWorkload` generates exactly those three ingredients: each
processor interleaves a word-stride sequential scan of its private buffer
with writes to its *own* slot of a packed shared array (the classic
false-sharing shape).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator

from repro.workloads.trace import Op, ReferenceRecord, Trace

__all__ = ["SpatialConfig", "SpatialWorkload"]


@dataclasses.dataclass(frozen=True)
class SpatialConfig:
    """Parameters of the byte-granular model."""

    processors: int = 4
    #: Bytes of private sequential buffer per processor.
    private_bytes: int = 4096
    #: Word stride of the sequential scan.
    stride: int = 4
    #: Probability a reference targets the packed shared array.
    p_shared: float = 0.15
    #: Probability a shared-array access is a write (counters are mostly
    #: written).
    p_shared_write: float = 0.7
    #: Probability a private access is a write.
    p_private_write: float = 0.2
    #: Bytes per processor slot in the packed shared array.  Slots are
    #: contiguous, so any line size above the slot size induces false
    #: sharing between neighbouring processors.
    shared_slot_bytes: int = 8

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("need at least one processor")
        if self.stride < 1 or self.private_bytes < self.stride:
            raise ValueError("degenerate private buffer")
        for name in ("p_shared", "p_shared_write", "p_private_write"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")

    @property
    def shared_region_bytes(self) -> int:
        return self.processors * self.shared_slot_bytes

    def unit_ids(self) -> list[str]:
        return [f"cpu{i}" for i in range(self.processors)]


class SpatialWorkload:
    """Reproducible byte-granular reference streams.

    Address map: the packed shared array occupies [0, shared_region);
    each processor's private buffer follows, aligned to 4096 bytes so
    line-size sweeps never blend private regions.
    """

    def __init__(self, config: SpatialConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed

    def private_base(self, processor: int) -> int:
        region = max(4096, self.config.private_bytes)
        return 4096 + processor * region

    def shared_slot(self, processor: int) -> int:
        return processor * self.config.shared_slot_bytes

    def stream(self, processor: int) -> Iterator[tuple[Op, int]]:
        cfg = self.config
        rng = random.Random(f"{self.seed}/{processor}")
        base = self.private_base(processor)
        scan_offset = 0
        while True:
            if rng.random() < cfg.p_shared:
                # Touch the processor's own slot in the packed array --
                # logically private, physically adjacent to the others.
                address = self.shared_slot(processor) + (
                    rng.randrange(cfg.shared_slot_bytes // cfg.stride)
                    * cfg.stride
                )
                write = rng.random() < cfg.p_shared_write
            else:
                address = base + scan_offset
                scan_offset = (scan_offset + cfg.stride) % cfg.private_bytes
                write = rng.random() < cfg.p_private_write
            yield (Op.WRITE if write else Op.READ, address)

    def trace(self, references: int) -> Trace:
        unit_ids = self.config.unit_ids()
        streams = [self.stream(i) for i in range(self.config.processors)]
        trace = Trace()
        for i in range(references):
            processor = i % self.config.processors
            op, address = next(streams[processor])
            trace.append(ReferenceRecord(unit_ids[processor], op, address))
        return trace

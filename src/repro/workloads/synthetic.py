"""Synthetic multiprocessor reference generator (Dubois-Briggs style).

The paper's performance discussion rests on [Arch85], whose simulations
"are based only on a model of program behavior [Dubo82]" -- a
probabilistic model, not address traces.  This module implements that
class of model:

* each processor owns a pool of **private** blocks and all share a pool
  of **shared** blocks;
* each reference is shared with probability ``p_shared``, a write with
  probability ``p_write`` (independently for shared/private);
* temporal locality: with probability ``locality`` a reference re-uses
  the processor's previous block of that class instead of drawing a new
  one;
* shared blocks are drawn from a geometric-ish skew so some blocks are
  "hot" (actively shared) -- the regime where the update-vs-invalidate
  choice matters (section 5.2).

All draws come from a seeded :class:`random.Random`, so traces are
reproducible.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator, Optional

from repro.workloads.trace import Op, ReferenceRecord, Trace

__all__ = ["SyntheticConfig", "SyntheticWorkload"]


@dataclasses.dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the probabilistic program-behaviour model."""

    processors: int = 4
    #: Distinct shared blocks (line-sized).
    shared_blocks: int = 16
    #: Distinct private blocks per processor.
    private_blocks: int = 64
    #: Probability a reference targets shared data.
    p_shared: float = 0.2
    #: Probability a reference is a write (applied to both classes).
    p_write: float = 0.3
    #: Probability of re-referencing the previous block of the same class.
    locality: float = 0.6
    #: Skew of the shared-block popularity (1.0 = uniform; higher = hotter
    #: hot set).
    sharing_skew: float = 2.0
    #: Line size used to turn block numbers into byte addresses.
    line_size: int = 32

    def __post_init__(self) -> None:
        for name in ("p_shared", "p_write", "locality"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.processors < 1:
            raise ValueError("need at least one processor")
        if self.shared_blocks < 1 or self.private_blocks < 1:
            raise ValueError("block pools must be non-empty")
        if self.sharing_skew < 1.0:
            raise ValueError("sharing_skew must be >= 1.0")

    def unit_ids(self) -> list[str]:
        return [f"cpu{i}" for i in range(self.processors)]


class SyntheticWorkload:
    """Reproducible reference-stream factory for one configuration.

    The address map places all shared blocks first, then each processor's
    private region, so shared and private lines never collide.
    """

    def __init__(self, config: SyntheticConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed

    # ------------------------------------------------------------------
    # Address map.
    # ------------------------------------------------------------------
    def shared_address(self, block: int) -> int:
        if not 0 <= block < self.config.shared_blocks:
            raise ValueError(f"shared block out of range: {block}")
        return block * self.config.line_size

    def private_address(self, processor: int, block: int) -> int:
        if not 0 <= block < self.config.private_blocks:
            raise ValueError(f"private block out of range: {block}")
        base = self.config.shared_blocks + processor * self.config.private_blocks
        return (base + block) * self.config.line_size

    # ------------------------------------------------------------------
    def _draw_shared_block(self, rng: random.Random) -> int:
        """Skewed popularity: block b with weight (b+1)^-skew."""
        n = self.config.shared_blocks
        if self.config.sharing_skew == 1.0:
            return rng.randrange(n)
        weights = [(b + 1) ** -self.config.sharing_skew for b in range(n)]
        return rng.choices(range(n), weights=weights, k=1)[0]

    def stream(self, processor: int) -> Iterator[tuple[Op, int]]:
        """Infinite (op, byte-address) stream for one processor."""
        cfg = self.config
        rng = random.Random(f"{self.seed}/{processor}")
        last_shared: Optional[int] = None
        last_private: Optional[int] = None
        while True:
            is_shared = rng.random() < cfg.p_shared
            is_write = rng.random() < cfg.p_write
            if is_shared:
                if last_shared is not None and rng.random() < cfg.locality:
                    block = last_shared
                else:
                    block = self._draw_shared_block(rng)
                last_shared = block
                address = self.shared_address(block)
            else:
                if last_private is not None and rng.random() < cfg.locality:
                    block = last_private
                else:
                    block = rng.randrange(cfg.private_blocks)
                last_private = block
                address = self.private_address(processor, block)
            yield (Op.WRITE if is_write else Op.READ, address)

    def trace(self, references: int) -> Trace:
        """A finite round-robin interleaving of all processors' streams."""
        unit_ids = self.config.unit_ids()
        streams = [self.stream(i) for i in range(self.config.processors)]
        trace = Trace()
        for i in range(references):
            processor = i % self.config.processors
            op, address = next(streams[processor])
            trace.append(ReferenceRecord(unit_ids[processor], op, address))
        return trace

    def streams(self) -> dict[str, Iterator[tuple[Op, int]]]:
        """Per-unit infinite streams for the timed runner."""
        return {
            unit_id: self.stream(i)
            for i, unit_id in enumerate(self.config.unit_ids())
        }

"""Memory-reference traces: records, containers, and text-file I/O.

The paper laments that "experiments based on real multiprocessor shared
memory address traces" were not yet available; the reproduction therefore
runs on synthetic traces (:mod:`repro.workloads.synthetic`,
:mod:`repro.workloads.patterns`) but keeps a plain text format so real
traces can be dropped in:

    # comment lines start with '#'
    <unit> <R|W> <hex-or-dec byte address>

one record per line, e.g. ``cpu0 R 0x1f40``.
"""

from __future__ import annotations

import dataclasses
import enum
import io
from pathlib import Path
from typing import Iterable, Iterator, Union

__all__ = ["Op", "ReferenceRecord", "Trace"]


class Op(enum.Enum):
    """A processor memory operation."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True)
class ReferenceRecord:
    """One memory reference by one processor/board."""

    unit: str
    op: Op
    address: int

    def to_line(self) -> str:
        return f"{self.unit} {self.op.value} 0x{self.address:x}"

    @classmethod
    def from_line(cls, line: str) -> "ReferenceRecord":
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"malformed trace record: {line!r}")
        unit, op_text, addr_text = parts
        try:
            op = Op(op_text.upper())
        except ValueError:
            raise ValueError(f"unknown op {op_text!r} in: {line!r}") from None
        address = int(addr_text, 0)
        if address < 0:
            raise ValueError(f"negative address in: {line!r}")
        return cls(unit, op, address)


class Trace:
    """An ordered sequence of references, with simple introspection."""

    def __init__(self, records: Iterable[ReferenceRecord] = ()) -> None:
        self.records: list[ReferenceRecord] = list(records)

    def append(self, record: ReferenceRecord) -> None:
        self.records.append(record)

    def __iter__(self) -> Iterator[ReferenceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index):
        return self.records[index]

    # ------------------------------------------------------------------
    def units(self) -> list[str]:
        """Distinct units in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.unit, None)
        return list(seen)

    def write_fraction(self) -> float:
        if not self.records:
            return 0.0
        writes = sum(1 for r in self.records if r.op is Op.WRITE)
        return writes / len(self.records)

    def addresses(self) -> set[int]:
        return {r.address for r in self.records}

    # ------------------------------------------------------------------
    def dump(self, stream: io.TextIOBase) -> None:
        for record in self.records:
            stream.write(record.to_line() + "\n")

    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="ascii") as handle:
            self.dump(handle)

    @classmethod
    def parse(cls, stream: Iterable[str]) -> "Trace":
        trace = cls()
        for raw in stream:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            trace.append(ReferenceRecord.from_line(line))
        return trace

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        with open(path, "r", encoding="ascii") as handle:
            return cls.parse(handle)

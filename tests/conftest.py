"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.bus.futurebus import Futurebus
from repro.cache.cache import SetAssociativeCache
from repro.cache.controller import CacheController, NonCachingMaster
from repro.core.actions import MasterKind
from repro.memory.main_memory import MainMemory
from repro.protocols.registry import make_protocol


class MiniSystem:
    """A hand-wired bus + memory + controllers rig for scenario tests.

    Unlike :class:`repro.system.System` it performs no automatic coherence
    checking and hands out raw controllers, which scenario tests poke at
    directly.  Values are managed by the test.
    """

    def __init__(self, *protocol_names: str, num_sets: int = 4,
                 associativity: int = 2, line_size: int = 32) -> None:
        self.memory = MainMemory()
        self.bus = Futurebus(self.memory)
        self.units: list = []
        for index, name in enumerate(protocol_names):
            protocol = make_protocol(name)
            unit_id = f"u{index}"
            if protocol.kind is MasterKind.NON_CACHING:
                unit = NonCachingMaster(unit_id, protocol, self.bus)
            else:
                cache = SetAssociativeCache(
                    num_sets=num_sets,
                    associativity=associativity,
                    line_size=line_size,
                )
                unit = CacheController(unit_id, protocol, cache, self.bus)
            self.units.append(unit)

    def __getitem__(self, index: int):
        return self.units[index]

    def states(self, line_address: int = 0) -> str:
        """Compact state string, e.g. 'M,I' -- handy in asserts."""
        return ",".join(
            u.state_of(line_address).letter for u in self.units
        )


@pytest.fixture
def mini():
    """Factory fixture: ``mini('moesi', 'moesi')`` builds a rig."""
    return MiniSystem

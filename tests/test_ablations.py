"""Ablation harness mechanics (small/fast configurations; the full-size
sweeps with shape assertions live in benchmarks/test_bench_ablations.py)."""

from repro.analysis.ablations import (
    geometry_sweep,
    line_size_sweep,
    replacement_policy_sweep,
)


class TestLineSizeSweep:
    def test_rows_cover_requested_sizes(self):
        rows = line_size_sweep(line_sizes=(16, 64), references=800)
        assert [r["line_size"] for r in rows] == [16, 64]

    def test_capacity_held_constant(self):
        rows = line_size_sweep(
            line_sizes=(16, 32, 64), references=400, capacity_bytes=2048
        )
        for row in rows:
            assert row["num_sets"] * 2 * row["line_size"] == 2048

    def test_spatial_locality_visible(self):
        """Even a small run shows the spatial-locality side of the trade."""
        rows = line_size_sweep(line_sizes=(16, 128), references=2000)
        assert rows[1]["miss_ratio"] < rows[0]["miss_ratio"]


class TestReplacementSweep:
    def test_rows_per_policy(self):
        rows = replacement_policy_sweep(
            policies=("lru", "random"), references=800
        )
        assert [r["replacement"] for r in rows] == ["lru", "random"]

    def test_metrics_present(self):
        (row,) = replacement_policy_sweep(policies=("lru",), references=400)
        assert {"miss_ratio", "bus_txns", "write_backs"} <= set(row)


class TestGeometrySweep:
    def test_capacity_constant_across_shapes(self):
        rows = geometry_sweep(references=400)
        capacities = {r["capacity_lines"] for r in rows}
        assert len(capacities) == 1

    def test_custom_shapes(self):
        rows = geometry_sweep(shapes=((4, 2), (2, 4)), references=400)
        assert [(r["num_sets"], r["associativity"]) for r in rows] == [
            (4, 2),
            (2, 4),
        ]

"""Tests for actions, conditional result states, and cell notation."""

import pytest

from repro.core.actions import (
    CH_O_OR_M,
    CH_S_OR_E,
    BusOp,
    ConditionalState,
    LocalAction,
    MasterKind,
    SnoopAction,
    resolve_next_state,
)
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


class TestConditionalState:
    def test_ch_o_or_m_resolution(self):
        """CH:O/M -- if another cache retains a copy, land O, else M."""
        assert CH_O_OR_M.resolve(True) is O
        assert CH_O_OR_M.resolve(False) is M

    def test_ch_s_or_e_resolution(self):
        assert CH_S_OR_E.resolve(True) is S
        assert CH_S_OR_E.resolve(False) is E

    def test_notation(self):
        assert CH_O_OR_M.notation() == "CH:O/M"
        assert CH_S_OR_E.notation() == "CH:S/E"

    def test_resolve_next_state_passthrough(self):
        assert resolve_next_state(M, True) is M
        assert resolve_next_state(CH_S_OR_E, True) is S

    def test_custom_conditional(self):
        cond = ConditionalState(S, M)
        assert cond.notation() == "CH:S/M"


class TestLocalActionNotation:
    """Notation must round-trip the paper's cell syntax."""

    def test_silent(self):
        assert LocalAction(M).notation() == "M"

    def test_broadcast_write(self):
        action = LocalAction(
            CH_O_OR_M, MasterSignals(True, True, True), BusOp.WRITE
        )
        assert action.notation() == "CH:O/M,CA,IM,BC,W"

    def test_address_only_invalidate(self):
        action = LocalAction(M, MasterSignals(ca=True, im=True), BusOp.NONE)
        assert action.notation() == "M,CA,IM"

    def test_push_with_bc_dont_care(self):
        action = LocalAction(
            E, MasterSignals(ca=True), BusOp.WRITE, bc_dont_care=True
        )
        assert action.notation() == "E,CA,BC?,W"

    def test_read_miss(self):
        action = LocalAction(CH_S_OR_E, MasterSignals(ca=True), BusOp.READ)
        assert action.notation() == "CH:S/E,CA,R"

    def test_read_then_write(self):
        action = LocalAction(
            CH_S_OR_E, MasterSignals(ca=True), BusOp.READ_THEN_WRITE
        )
        assert action.notation() == "Read>Write"

    def test_write_through_annotation(self):
        action = LocalAction(
            S,
            MasterSignals(im=True, bc=True),
            BusOp.WRITE,
            kind=MasterKind.WRITE_THROUGH,
        )
        assert action.notation() == "S,IM,BC,W*"

    def test_shared_annotation(self):
        action = LocalAction(
            I,
            MasterSignals(im=True),
            BusOp.WRITE,
            kind=MasterKind.WRITE_THROUGH_OR_NON_CACHING,
        )
        assert action.notation() == "I,IM,W*,**"

    def test_non_caching_read(self):
        action = LocalAction(
            I, MasterSignals(), BusOp.READ, kind=MasterKind.NON_CACHING
        )
        assert action.notation() == "I,R**"


class TestLocalActionValidation:
    def test_silent_predicate(self):
        assert LocalAction(M).is_silent
        assert not LocalAction(
            M, MasterSignals(ca=True, im=True), BusOp.NONE
        ).is_silent

    def test_uses_bus_for_read(self):
        assert LocalAction(S, MasterSignals(ca=True), BusOp.READ).uses_bus

    def test_address_only_without_ca_rejected(self):
        """An address-only invalidate must identify a cache master."""
        with pytest.raises(ValueError):
            LocalAction(M, MasterSignals(im=True), BusOp.NONE)

    def test_bc_dont_care_excludes_bc(self):
        with pytest.raises(ValueError):
            LocalAction(
                E,
                MasterSignals(ca=True, bc=True, im=True),
                BusOp.WRITE,
                bc_dont_care=True,
            )


class TestSnoopActionNotation:
    def test_intervene(self):
        action = SnoopAction(O, SnoopResponse(ch=True, di=True))
        assert action.notation() == "O,CH,DI"

    def test_dont_care(self):
        action = SnoopAction(M, SnoopResponse(ch=None, di=True))
        assert action.notation() == "M,CH?,DI"

    def test_silent_invalidate(self):
        assert SnoopAction(I).notation() == "I"

    def test_conditional_snoop(self):
        action = SnoopAction(CH_O_OR_M, SnoopResponse(di=True))
        assert action.notation() == "CH:O/M,DI"

    def test_abort_push(self):
        action = SnoopAction(
            S,
            SnoopResponse(bs=True),
            abort_push=True,
            push_signals=MasterSignals(ca=True),
        )
        assert action.notation() == "BS;S,CA,W"


class TestSnoopActionValidation:
    def test_abort_requires_bs(self):
        with pytest.raises(ValueError):
            SnoopAction(S, SnoopResponse(), abort_push=True)

    def test_push_signals_require_abort(self):
        with pytest.raises(ValueError):
            SnoopAction(
                S, SnoopResponse(bs=True), push_signals=MasterSignals(ca=True)
            )

    @pytest.mark.parametrize(
        "state,retains",
        [(M, True), (O, True), (E, True), (S, True), (I, False)],
    )
    def test_retains_copy(self, state, retains):
        assert SnoopAction(state).retains_copy is retains

    def test_conditional_retains(self):
        assert SnoopAction(CH_O_OR_M, SnoopResponse(di=True)).retains_copy

    def test_connects_predicate(self):
        assert SnoopAction(S, SnoopResponse(sl=True, ch=True)).connects


class TestMasterKind:
    def test_copy_back_includes_nothing_extra(self):
        kind = MasterKind.COPY_BACK
        assert not kind.includes_write_through
        assert not kind.includes_non_caching

    def test_shared_kind(self):
        kind = MasterKind.WRITE_THROUGH_OR_NON_CACHING
        assert kind.includes_write_through and kind.includes_non_caching

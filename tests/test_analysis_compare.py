"""The Arch85-substitute comparison harness (small, fast configurations).

These verify the harness mechanics and the *direction* of the headline
results; the full-size sweeps live in benchmarks/."""

import pytest

from repro.analysis.compare import (
    protocol_comparison,
    run_protocol_on_trace,
    update_vs_invalidate_sweep,
    write_through_vs_copy_back,
)
from repro.analysis.report import format_rows
from repro.workloads.patterns import ping_pong, producer_consumer
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload


@pytest.fixture(scope="module")
def small_trace():
    config = SyntheticConfig(processors=2, p_shared=0.3, p_write=0.3)
    return SyntheticWorkload(config, seed=1).trace(600)


class TestRunProtocolOnTrace:
    def test_report_labeled(self, small_trace):
        report = run_protocol_on_trace("berkeley", small_trace)
        assert report.label == "berkeley"
        assert report.accesses == len(small_trace)

    def test_untimed_mode(self, small_trace):
        report = run_protocol_on_trace("moesi", small_trace, timed=False)
        assert report.elapsed_ns == 0.0
        assert report.bus.transactions > 0

    def test_check_mode_validates(self, small_trace):
        # Should not raise: the protocol is correct.
        run_protocol_on_trace("moesi", small_trace, timed=False, check=True)


class TestProtocolComparison:
    def test_one_row_per_protocol(self, small_trace):
        rows = protocol_comparison(
            trace=small_trace, protocols=("moesi", "berkeley")
        )
        assert [r["system"] for r in rows] == ["moesi", "berkeley"]

    def test_rows_formattable(self, small_trace):
        rows = protocol_comparison(
            trace=small_trace, protocols=("moesi",)
        )
        text = format_rows(rows, "t")
        assert "moesi" in text


class TestHeadlineShapes:
    """The qualitative results the paper's section 5.2 relies on."""

    def test_update_beats_invalidate_on_active_sharing(self):
        """[Arch85]: "it was desirable to broadcast writes to other caches
        rather than to invalidate them" -- with enough sharers."""
        rows = update_vs_invalidate_sweep(
            sharing_levels=(0.5,), references=800, processors=4
        )
        assert rows[0]["winner"] == "update"

    def test_update_advantage_grows_with_sharing(self):
        rows = update_vs_invalidate_sweep(
            sharing_levels=(0.05, 0.5), references=800, processors=4
        )
        def gap(row):
            return (
                row["invalidate_ns_per_access"] - row["update_ns_per_access"]
            )
        assert gap(rows[1]) > gap(rows[0])

    def test_preferred_choice_depends_on_sharer_count(self):
        """Section 5.2's caveat made concrete: with only two processors
        there is at most one cache to keep updated, and invalidation can
        win; with four, broadcast-update wins.  "The preferred protocol is
        sensitive to the implementation" -- and to the configuration."""
        two = update_vs_invalidate_sweep(
            sharing_levels=(0.5,), references=800, processors=2
        )
        four = update_vs_invalidate_sweep(
            sharing_levels=(0.5,), references=800, processors=4
        )
        assert two[0]["winner"] == "invalidate"
        assert four[0]["winner"] == "update"

    def test_copy_back_cuts_traffic(self):
        """Section 3.1: copy-back gives the "greatest reduction in bus
        traffic"."""
        rows = write_through_vs_copy_back(
            write_fractions=(0.4,), references=800
        )
        assert rows[0]["traffic_ratio"] > 1.5

    def test_write_through_gap_grows_with_write_fraction(self):
        rows = write_through_vs_copy_back(
            write_fractions=(0.1, 0.5), references=800
        )
        assert rows[1]["traffic_ratio"] > rows[0]["traffic_ratio"]

    def test_producer_consumer_favors_update(self):
        trace = producer_consumer(items=30, consumers=3)
        update = run_protocol_on_trace("moesi-update", trace)
        invalidate = run_protocol_on_trace("moesi-invalidate", trace)
        assert (
            update.bus.transactions < invalidate.bus.transactions
        )

    def test_abort_protocols_pay_on_pingpong(self):
        trace = ping_pong(rounds=40)
        illinois = run_protocol_on_trace("illinois", trace)
        moesi = run_protocol_on_trace("moesi", trace)
        assert illinois.bus.retries > 0
        assert moesi.bus.retries == 0
        assert illinois.bus_ns_per_access > moesi.bus_ns_per_access

"""Figure regeneration (F1-F4)."""

import pytest

from repro.analysis.figures import (
    figure1_broadcast_handshake,
    figure2_parallel_protocol,
    figure3_characteristics,
    figure3_rows,
    figure4_groups,
    figure4_state_pairs,
    render_waveforms,
)
from repro.bus.wired_or import WiredOrLine
from repro.core.states import LineState


class TestFigure1:
    def test_mentions_filter_and_glitches(self):
        text = figure1_broadcast_handshake()
        assert "inertial filter" in text
        assert "glitches absorbed: 2" in text

    def test_waveform_shows_assert_then_release(self):
        text = figure1_broadcast_handshake()
        wave_line = next(l for l in text.splitlines() if "SYNC*" in l)
        assert "_" in wave_line and "~" in wave_line

    def test_glitch_markers_present(self):
        text = figure1_broadcast_handshake()
        assert "!" in text

    def test_custom_release_times(self):
        text = figure1_broadcast_handshake(release_times=(10.0, 20.0))
        assert "glitches absorbed: 1" in text


class TestFigure2:
    def test_all_four_signals_rendered(self):
        text = figure2_parallel_protocol()
        for name in ("AD", "AS*", "AK*", "AI*"):
            assert name in text

    def test_reports_filtered_glitches(self):
        text = figure2_parallel_protocol()
        assert "wired-OR glitch" in text


class TestFigure3:
    def test_rows_match_paper(self):
        rows = figure3_rows()
        assert rows[0] == ("M", "Modified", "valid", "exclusive", "owned")
        assert rows[1] == ("O", "Owned", "valid", "shareable", "owned")
        assert rows[2] == ("E", "Exclusive", "valid", "exclusive", "unowned")
        assert rows[3] == ("S", "Shareable", "valid", "shareable", "unowned")
        assert rows[4] == ("I", "Invalid", "invalid", "-", "-")

    def test_render(self):
        text = figure3_characteristics()
        assert "validity" in text and "ownership" in text


class TestFigure4:
    def test_groups_derive_from_predicates(self):
        groups = figure4_groups()
        assert groups["M+O"][0] == {LineState.MODIFIED, LineState.OWNED}
        assert groups["E+S"][0] == {
            LineState.EXCLUSIVE,
            LineState.SHAREABLE,
        }

    def test_render_mentions_intervention(self):
        assert "intervenient" in figure4_state_pairs()


class TestWaveformRenderer:
    def test_levels_sampled(self):
        line = WiredOrLine("X")
        line.assert_("a", 10.0)
        line.release("a", 20.0)
        text = render_waveforms({"X": line}, 0.0, 30.0, width=30)
        row = text.splitlines()[0]
        assert row.count("_") > 0 and row.count("~") > 0

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            render_waveforms({"X": WiredOrLine("X")}, 10.0, 10.0)

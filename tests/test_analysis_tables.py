"""Table regeneration and paper diffing (experiments T1-T7)."""

import pytest

from repro.analysis.paper_data import canonical_cell
from repro.analysis.tables import (
    diff_all_tables,
    diff_protocol_table,
    diff_table1,
    diff_table2,
    moesi_local_cells,
    moesi_snoop_cells,
    protocol_cells,
    render_cells,
)
from repro.protocols.berkeley import BerkeleyProtocol


class TestPaperDiffs:
    def test_table1_matches(self):
        diff = diff_table1()
        assert diff.matches, [str(m) for m in diff.mismatches]
        assert diff.cells_compared == 20

    def test_table2_matches(self):
        diff = diff_table2()
        assert diff.matches, [str(m) for m in diff.mismatches]
        assert diff.cells_compared == 30

    @pytest.mark.parametrize("number", [3, 4, 5, 6, 7])
    def test_protocol_tables_match(self, number):
        diff = diff_protocol_table(number)
        assert diff.matches, [str(m) for m in diff.mismatches]

    def test_all_tables_helper(self):
        diffs = diff_all_tables()
        assert len(diffs) == 7
        assert all(d.matches for d in diffs)

    def test_unknown_table_number(self):
        with pytest.raises(ValueError, match="know 3-7"):
            diff_protocol_table(9)


class TestCanonicalization:
    def test_token_order_insensitive(self):
        assert canonical_cell("M,DI,CH?") == canonical_cell("M,CH?,DI")

    def test_state_head_preserved(self):
        assert canonical_cell("O,CH,DI").startswith("O,")

    def test_bs_prefix_kept_in_head(self):
        assert canonical_cell("BS;S,CA,W").startswith("BS;S")

    def test_different_states_differ(self):
        assert canonical_cell("S,CH") != canonical_cell("E,CH")


class TestCellExtraction:
    def test_moesi_local_cells_complete(self):
        cells = moesi_local_cells()
        assert len(cells) == 20
        assert cells[("O", "Write")] == ["CH:O/M,CA,IM,BC,W", "M,CA,IM",
                                         ]

    def test_moesi_snoop_cells_complete(self):
        cells = moesi_snoop_cells()
        assert len(cells) == 30
        assert cells[("M", 8)] == []

    def test_protocol_cells_respects_columns(self):
        cells = protocol_cells(BerkeleyProtocol(), ["Read", 5])
        assert ("M", "Read") in cells and ("M", 5) in cells
        assert ("M", "Write") not in cells


class TestRendering:
    def test_render_contains_all_states_and_columns(self):
        text = render_cells(moesi_snoop_cells(), "T2")
        for token in ("T2", "| M ", "| O ", "| I ", "col 5", "col 10"):
            assert token in text

    def test_illegal_cells_render_as_dashes(self):
        text = render_cells(moesi_snoop_cells(), "T2")
        assert "--" in text

    def test_alternatives_render_with_or(self):
        text = render_cells(moesi_local_cells(), "T1")
        assert "or M,CA,IM" in text

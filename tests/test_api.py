"""The repro.api facade: sessions, typed results, the package front door."""

import json

import pytest

from repro import (
    ExperimentResult,
    FuzzResult,
    Session,
    VerifyResult,
    fuzz_campaign,
    run_experiment,
)
from repro.obs.export import validate_chrome_trace
from repro.workloads import ping_pong


class TestRunExperiment:
    def test_default_synthetic_run(self):
        session = Session()
        result = session.run_experiment(protocol="moesi", references=300)
        assert isinstance(result, ExperimentResult)
        assert result.ok and not result.violations
        assert result.report.accesses == 300
        assert result.metrics["bus.transactions"] > 0
        assert result.trace is None and result.label == "moesi"

    def test_mixed_protocols(self):
        session = Session()
        result = session.run_experiment(
            protocols=["moesi", "dragon", "write-through"],
            workload=ping_pong(rounds=20, processors=3),
        )
        assert result.ok
        assert result.label == "moesi+dragon+write-through"
        protocols = {unit: board.protocol.name.lower()
                     for unit, board in result.system.controllers.items()}
        assert len(set(protocols.values())) == 3

    def test_too_few_protocols_raises(self):
        session = Session()
        with pytest.raises(ValueError, match="protocols"):
            session.run_experiment(
                protocols=["moesi"],
                workload=ping_pong(rounds=5, processors=3),
            )

    def test_unknown_protocol_raises(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            Session().run_experiment(protocol="nonsense", references=10)

    def test_timed_run_reports_elapsed(self):
        result = Session().run_experiment(
            protocol="moesi", references=200, timed=True
        )
        assert result.ok
        assert result.report.elapsed_ns > 0

    def test_module_level_one_shot(self):
        result = run_experiment(protocol="illinois", references=200)
        assert result.ok and result.trace is None


class TestTracedRoundTrip:
    """The acceptance path: experiment -> typed result -> exported trace."""

    def test_trace_export_and_validate(self, tmp_path):
        session = Session(label="rt", trace=True)
        result = session.run_experiment(protocol="illinois",
                                        references=300)
        assert result.ok and result.trace
        path = result.write_trace(tmp_path / "out.trace.json")
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        cats = {r.get("cat") for r in payload["traceEvents"]}
        assert {"bus", "transition"} <= cats

    def test_jsonl_export(self, tmp_path):
        session = Session(trace=True)
        result = session.run_experiment(protocol="moesi", references=100)
        path = result.write_trace(tmp_path / "out.jsonl", fmt="jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(result.trace)

    def test_unknown_format_raises(self, tmp_path):
        session = Session(trace=True)
        result = session.run_experiment(protocol="moesi", references=50)
        with pytest.raises(ValueError, match="unknown trace format"):
            result.write_trace(tmp_path / "x", fmt="xml")

    def test_write_trace_without_tracing_raises(self, tmp_path):
        result = Session().run_experiment(protocol="moesi", references=50)
        with pytest.raises(ValueError, match="trace=True"):
            result.write_trace(tmp_path / "x.json")

    def test_session_accumulates_across_runs(self):
        session = Session(trace=True)
        first = session.run_experiment(protocol="moesi", references=100)
        second = session.run_experiment(protocol="dragon", references=100)
        assert len(second.trace) > len(first.trace)

    def test_to_json_round_trips_through_report(self):
        from repro.system.stats import SystemReport

        session = Session(trace=True)
        result = session.run_experiment(protocol="moesi", references=100)
        restored = SystemReport.from_json(result.to_json())
        assert restored.to_json() == result.report.to_json()


class TestVerify:
    def test_quick_matrix(self):
        from repro.verify.mixes import class_member_mixes

        session = Session()
        result = session.verify(cases=class_member_mixes()[:3])
        assert isinstance(result, VerifyResult)
        assert result.ok and result.failures == []
        assert len(result.rows) == 3

    def test_traced_matrix_marks_cases(self):
        from repro.verify.mixes import homogeneous_foreign

        session = Session(trace=True)
        result = session.verify(cases=homogeneous_foreign()[:2])
        marks = [e for e in result.trace if e["kind"] == "mark"
                 and e["name"] == "verify.case"]
        assert len(marks) == 2
        assert all(m["args"]["ok"] for m in marks)


class TestFuzz:
    def test_clean_campaign(self, tmp_path):
        session = Session()
        result = session.fuzz_campaign(seeds=8,
                                       out_dir=tmp_path / "repros")
        assert isinstance(result, FuzzResult)
        assert result.ok and result.failures == []
        assert result.report.seeds_run == 8

    def test_config_and_seeds_conflict(self):
        from repro.fuzz import CampaignConfig

        with pytest.raises(ValueError, match="not both"):
            Session().fuzz_campaign(config=CampaignConfig(seeds=3), seeds=3)

    def test_traced_campaign_marks_stages(self, tmp_path):
        session = Session(trace=True)
        result = session.fuzz_campaign(seeds=5,
                                       out_dir=tmp_path / "repros")
        names = [e["name"] for e in result.trace if e["kind"] == "mark"]
        assert "fuzz.start" in names and "fuzz.done" in names

    def test_module_level_one_shot(self, tmp_path):
        result = fuzz_campaign(seeds=5, out_dir=tmp_path / "repros")
        assert result.ok

    def test_injected_bug_is_caught(self, tmp_path):
        import dataclasses

        from repro.fuzz import CampaignConfig, ScenarioConfig

        config = CampaignConfig(
            seeds=30,
            scenario=dataclasses.replace(ScenarioConfig(),
                                         inject="illinois-silent-im"),
        )
        session = Session(trace=True)
        result = session.fuzz_campaign(config=config,
                                       out_dir=tmp_path / "repros")
        assert not result.ok and result.failures
        failures = [e for e in result.trace
                    if e["kind"] == "mark" and e["name"] == "fuzz.failure"]
        assert len(failures) == len(result.failures)


class TestShootout:
    def test_rows_per_protocol(self):
        session = Session()
        rows = session.shootout(references=300,
                                protocols=["moesi", "berkeley"])
        assert [row["system"] for row in rows] == ["moesi", "berkeley"]
        assert all("elapsed_us" in row for row in rows)

    def test_traced_rows_have_per_protocol_streams(self):
        session = Session(trace=True)
        session.shootout(references=200, protocols=["moesi", "dragon"])
        streams = {e["stream"] for e in session.tracer.export()}
        assert {"moesi", "dragon"} <= streams


class TestSessionProfile:
    def test_experiment_region_recorded(self):
        session = Session(profile=True)
        session.run_experiment(protocol="moesi", references=100)
        (record,) = [r for r in session.profiler.records
                     if r.name == "experiment"]
        assert record.meta["references"] == 100

    def test_disabled_by_default(self):
        session = Session()
        assert session.profiler is None and session.tracer is None

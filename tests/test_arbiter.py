"""Bus arbitration disciplines."""

from repro.bus.arbiter import FcfsArbiter, PriorityArbiter


class TestFcfs:
    def test_grants_in_request_time_order(self):
        arbiter = FcfsArbiter()
        arbiter.request("b", 2.0)
        arbiter.request("a", 1.0)
        assert arbiter.grant().master == "a"
        assert arbiter.grant().master == "b"

    def test_ties_broken_by_arrival(self):
        arbiter = FcfsArbiter()
        arbiter.request("x", 1.0)
        arbiter.request("y", 1.0)
        assert arbiter.grant().master == "x"

    def test_empty_returns_none(self):
        assert FcfsArbiter().grant() is None

    def test_pending_count(self):
        arbiter = FcfsArbiter()
        arbiter.request("a", 0.0)
        arbiter.request("b", 0.0)
        assert arbiter.pending == 2
        arbiter.grant()
        assert arbiter.pending == 1


class TestPriority:
    def test_higher_priority_wins_despite_later_request(self):
        arbiter = PriorityArbiter({"io": 1, "cpu": 10})
        arbiter.request("cpu", 0.0)
        arbiter.request("io", 5.0)
        assert arbiter.grant().master == "io"

    def test_fcfs_among_equal_priorities(self):
        arbiter = PriorityArbiter({"a": 5, "b": 5})
        arbiter.request("b", 1.0)
        arbiter.request("a", 2.0)
        assert arbiter.grant().master == "b"

    def test_unlisted_masters_get_default_priority(self):
        arbiter = PriorityArbiter({"vip": 1})
        arbiter.request("pleb", 0.0)
        arbiter.request("vip", 9.0)
        assert arbiter.grant().master == "vip"

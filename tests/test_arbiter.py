"""Bus arbitration disciplines: unit tests plus Hypothesis properties.

The property tests pin the discipline guarantees the conformance
harness relies on: FCFS grants in (time, arrival) order and drains
completely; round-robin is starvation-free (one tenure per rotation);
priority never inverts (a higher-priority pending request is never
passed over)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.arbiter import (
    ARBITER_DISCIPLINES,
    FcfsArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    arbiter_by_name,
)


class TestFcfs:
    def test_grants_in_request_time_order(self):
        arbiter = FcfsArbiter()
        arbiter.request("b", 2.0)
        arbiter.request("a", 1.0)
        assert arbiter.grant().master == "a"
        assert arbiter.grant().master == "b"

    def test_ties_broken_by_arrival(self):
        arbiter = FcfsArbiter()
        arbiter.request("x", 1.0)
        arbiter.request("y", 1.0)
        assert arbiter.grant().master == "x"

    def test_empty_returns_none(self):
        assert FcfsArbiter().grant() is None

    def test_pending_count(self):
        arbiter = FcfsArbiter()
        arbiter.request("a", 0.0)
        arbiter.request("b", 0.0)
        assert arbiter.pending == 2
        arbiter.grant()
        assert arbiter.pending == 1


class TestPriority:
    def test_higher_priority_wins_despite_later_request(self):
        arbiter = PriorityArbiter({"io": 1, "cpu": 10})
        arbiter.request("cpu", 0.0)
        arbiter.request("io", 5.0)
        assert arbiter.grant().master == "io"

    def test_fcfs_among_equal_priorities(self):
        arbiter = PriorityArbiter({"a": 5, "b": 5})
        arbiter.request("b", 1.0)
        arbiter.request("a", 2.0)
        assert arbiter.grant().master == "b"

    def test_unlisted_masters_get_default_priority(self):
        arbiter = PriorityArbiter({"vip": 1})
        arbiter.request("pleb", 0.0)
        arbiter.request("vip", 9.0)
        assert arbiter.grant().master == "vip"


class TestRoundRobin:
    def test_cycles_through_masters(self):
        arbiter = RoundRobinArbiter()
        for master in ("a", "b", "c"):
            arbiter.request(master, 0.0)
            arbiter.request(master, 1.0)
        order = [arbiter.grant().master for _ in range(6)]
        assert order == ["a", "b", "c", "a", "b", "c"]

    def test_greedy_master_takes_one_tenure_per_rotation(self):
        arbiter = RoundRobinArbiter()
        for t in range(5):
            arbiter.request("greedy", float(t))
        arbiter.request("meek", 10.0)
        assert arbiter.grant().master == "greedy"
        # The meek master is served before greedy's backlog continues.
        assert arbiter.grant().master == "meek"
        assert arbiter.grant().master == "greedy"

    def test_empty_queues_are_skipped(self):
        arbiter = RoundRobinArbiter()
        arbiter.request("a", 0.0)
        arbiter.request("b", 0.0)
        assert arbiter.grant().master == "a"
        assert arbiter.grant().master == "b"
        arbiter.request("b", 1.0)
        assert arbiter.grant().master == "b"
        assert arbiter.grant() is None

    def test_pending_count(self):
        arbiter = RoundRobinArbiter()
        arbiter.request("a", 0.0)
        arbiter.request("a", 1.0)
        arbiter.request("b", 0.0)
        assert arbiter.pending == 3
        arbiter.grant()
        assert arbiter.pending == 2


class TestArbiterByName:
    @pytest.mark.parametrize("name", ARBITER_DISCIPLINES)
    def test_every_discipline_resolves(self, name):
        assert arbiter_by_name(name).discipline == name

    def test_rr_alias(self):
        assert isinstance(arbiter_by_name("rr"), RoundRobinArbiter)

    def test_priority_with_table(self):
        arbiter = arbiter_by_name("priority:io=1,cpu=10")
        assert arbiter.priorities == {"io": 1, "cpu": 10}

    def test_instance_passes_through(self):
        instance = RoundRobinArbiter()
        assert arbiter_by_name(instance) is instance

    def test_unknown_discipline_raises(self):
        with pytest.raises(ValueError, match="unknown arbitration"):
            arbiter_by_name("lottery")

    def test_bad_priority_entry_raises(self):
        with pytest.raises(ValueError, match="bad priority entry"):
            arbiter_by_name("priority:io")


# ---------------------------------------------------------------------------
# Hypothesis properties.
# ---------------------------------------------------------------------------
#: (master index, request time) schedules; small alphabets force contention.
_SCHEDULES = st.lists(
    st.tuples(st.integers(0, 4), st.floats(0.0, 100.0)),
    min_size=1,
    max_size=40,
)


def _drain(arbiter):
    grants = []
    while True:
        req = arbiter.grant()
        if req is None:
            return grants
        grants.append(req)


@settings(max_examples=200, deadline=None)
@given(_SCHEDULES)
def test_fcfs_drains_in_time_order(schedule):
    """FCFS grants every request, sorted by (time, arrival sequence)."""
    arbiter = FcfsArbiter()
    for index, (master, time) in enumerate(schedule):
        arbiter.request(f"m{master}", time)
    grants = _drain(arbiter)
    assert len(grants) == len(schedule)
    times = [g.time for g in grants]
    assert times == sorted(times)
    # Ties broken by arrival: the grant sequence is a stable sort of the
    # request sequence by time.
    expected = [
        f"m{master}"
        for _, master in sorted(
            ((time, index), master)
            for index, (master, time) in enumerate(schedule)
        )
    ]
    assert [g.master for g in grants] == expected


@settings(max_examples=200, deadline=None)
@given(_SCHEDULES)
def test_round_robin_is_starvation_free(schedule):
    """Between two consecutive grants to one master, every other master
    with a pending request is granted at least once -- no master can be
    starved by a higher-rate requester."""
    arbiter = RoundRobinArbiter()
    for master, time in schedule:
        arbiter.request(f"m{master}", time)
    grants = _drain(arbiter)
    assert len(grants) == len(schedule)

    pending = {f"m{m}" for m, _ in schedule}
    last_seen: dict[str, int] = {}
    remaining = {m: sum(1 for mm, _ in schedule if f"m{mm}" == m)
                 for m in pending}
    for position, grant in enumerate(grants):
        master = grant.master
        if master in last_seen:
            served_between = {g.master
                              for g in grants[last_seen[master] + 1:position]}
            # Every master that still had work must appear in between.
            starved = {
                m for m, count in remaining.items()
                if count > 0 and m != master and m not in served_between
            }
            assert not starved, (
                f"{master} granted twice while {starved} waited"
            )
        last_seen[master] = position
        remaining[master] -= 1


@settings(max_examples=200, deadline=None)
@given(
    _SCHEDULES,
    st.dictionaries(
        st.sampled_from([f"m{i}" for i in range(5)]),
        st.integers(0, 3),
        max_size=5,
    ),
)
def test_priority_never_inverts(schedule, priorities):
    """The priority arbiter drains every request sorted by
    (priority, time, arrival) -- a pending higher-priority request is
    never passed over (no priority inversion)."""
    arbiter = PriorityArbiter(priorities)
    for master, time in schedule:
        arbiter.request(f"m{master}", time)
    grants = _drain(arbiter)
    assert len(grants) == len(schedule)
    keys = [
        (priorities.get(g.master, 100), g.time) for g in grants
    ]
    assert keys == sorted(keys)

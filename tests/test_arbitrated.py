"""The arbitrated timed runner and the priority-slot effect."""

import pytest

from repro.bus.arbiter import FcfsArbiter, PriorityArbiter
from repro.system.arbitrated import ArbitratedRun, arbitrated_run_from_trace
from repro.system.processor import Processor
from repro.system.system import BoardSpec, System
from repro.workloads.patterns import ping_pong, private_streams
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload


def _synthetic_trace(processors=3, references=600, seed=61):
    config = SyntheticConfig(processors=processors, p_shared=0.3,
                             p_write=0.3)
    return SyntheticWorkload(config, seed=seed).trace(references)


class TestMechanics:
    def test_all_references_complete(self):
        trace = _synthetic_trace()
        system = System.homogeneous("moesi", 3)
        run = arbitrated_run_from_trace(system, trace)
        report = run.run()
        assert report.accesses == len(trace)
        assert sum(p.stats.completed for p in run.processors.values()) == len(
            trace
        )

    def test_coherence_checked_throughout(self):
        trace = _synthetic_trace(references=900)
        system = System.homogeneous("moesi", 3)
        arbitrated_run_from_trace(system, trace).run()
        assert not system.check_coherence()

    def test_unknown_processor_rejected(self):
        system = System.homogeneous("moesi", 1)
        with pytest.raises(ValueError, match="without boards"):
            ArbitratedRun(system, [Processor("ghost", iter([]))])

    def test_deterministic(self):
        def once():
            trace = _synthetic_trace()
            system = System.homogeneous("moesi", 3)
            report = arbitrated_run_from_trace(system, trace).run()
            return report.elapsed_ns, report.bus.transactions

        assert once() == once()

    def test_hits_bypass_arbitration(self):
        trace = private_streams(
            references_per_processor=20, processors=1, blocks_per_processor=1
        )
        system = System.homogeneous("moesi", 1)
        run = arbitrated_run_from_trace(system, trace)
        report = run.run()
        # One cold miss; everything after hits silently.
        assert report.bus.transactions == 1

    def test_matches_simple_runner_traffic(self):
        """Arbitration changes *when*, not *what*: same total traffic as
        the simple runner for per-unit-ordered private streams."""
        from repro.system.runner import timed_run_from_trace

        trace = private_streams(references_per_processor=40, processors=3)
        simple = System.homogeneous("moesi", 3)
        timed_run_from_trace(simple, trace).run()
        arbitrated = System.homogeneous("moesi", 3)
        arbitrated_run_from_trace(arbitrated, trace).run()
        assert (
            simple.report().bus.transactions
            == arbitrated.report().bus.transactions
        )


class TestPrioritySlots:
    def _contended_system_and_run(self, arbiter):
        """Three non-caching boards hammering the bus: every access
        arbitrates, so the discipline is fully visible."""
        system = System(
            [
                BoardSpec("io", "non-caching"),
                BoardSpec("cpu0", "non-caching"),
                BoardSpec("cpu1", "non-caching"),
            ]
        )
        trace = ping_pong(rounds=60, processors=3)
        # Rename units of the trace to our board names.
        from repro.workloads.trace import ReferenceRecord, Trace

        mapping = {"cpu0": "io", "cpu1": "cpu0", "cpu2": "cpu1"}
        renamed = Trace(
            ReferenceRecord(mapping[r.unit], r.op, r.address) for r in trace
        )
        run = arbitrated_run_from_trace(system, renamed, arbiter=arbiter)
        run.run()
        return run

    def test_priority_shortens_io_wait(self):
        fcfs = self._contended_system_and_run(FcfsArbiter())
        priority = self._contended_system_and_run(
            PriorityArbiter({"io": 1})
        )
        fcfs_io_wait = fcfs.processors["io"].stats.bus_wait_ns
        priority_io_wait = priority.processors["io"].stats.bus_wait_ns
        assert priority_io_wait < fcfs_io_wait

    def test_priority_costs_the_others(self):
        priority = self._contended_system_and_run(PriorityArbiter({"io": 1}))
        io_wait = priority.processors["io"].stats.bus_wait_ns
        cpu_wait = priority.processors["cpu0"].stats.bus_wait_ns
        assert io_wait < cpu_wait

"""Unit tests for the bench regression gates (synthetic reports).

The bench smoke job exercises :func:`repro.perf.bench.regression_report`
end-to-end against the committed baseline; these tests pin the gate
*logic* -- especially the serve memo-hit budget and its lower-is-better
host normalization -- on hand-built report dicts, so a gate bug fails
fast instead of surfacing as a flaky CI verdict.
"""

import copy

from repro.perf.bench import (
    MAX_SERVE_HIT_S,
    MIN_TPS_RATIO,
    regression_report,
)


def _report(cal=1_000_000.0, hit_s=1e-06, batch_tps=1_000_000.0):
    return {
        "calibration_ops_per_sec": cal,
        "explorer": [
            {"mix": "full-class+full-class", "transitions_per_sec": 25000.0}
        ],
        "matrix": {"speedup": 1.0},
        "des": {"speedup": 1.0},
        "obs": {"overhead_traced_pct": 10.0},
        "batch": {
            "rows": 1024,
            "verified_ok": True,
            "backends": {
                "numpy": {"transitions_per_sec": batch_tps},
            },
        },
        "serve": {"hit_s": hit_s, "miss_s": 0.03},
    }


BASELINE = _report()


class TestServeGate:
    def test_healthy_hit_passes(self):
        report = regression_report(_report(hit_s=2e-06), BASELINE)
        assert report["ok"], report["failures"]
        assert report["serve"]["current_hit_s"] == 2e-06
        assert report["budgets"]["max_serve_hit_s"] == MAX_SERVE_HIT_S

    def test_hit_over_budget_fails(self):
        report = regression_report(
            _report(hit_s=MAX_SERVE_HIT_S * 10), BASELINE
        )
        assert not report["ok"]
        assert any("serve" in f for f in report["failures"])

    def test_slow_host_discount_applies(self):
        # Host at half speed: a raw hit 1.6x over budget normalizes to
        # 0.8x of it -- the gate must credit the host, not the code.
        slow = _report(cal=500_000.0, hit_s=MAX_SERVE_HIT_S * 1.6)
        report = regression_report(slow, BASELINE)
        assert report["ok"], report["failures"]
        assert (
            report["serve"]["current_hit_s_normalized"]
            < report["serve"]["current_hit_s"]
        )

    def test_genuine_regression_survives_discount(self):
        # Over budget even after the 2x host credit: must still fail.
        slow = _report(cal=500_000.0, hit_s=MAX_SERVE_HIT_S * 4)
        report = regression_report(slow, BASELINE)
        assert not report["ok"]

    def test_report_without_serve_section_skips_gate(self):
        current = _report()
        del current["serve"]
        report = regression_report(current, BASELINE)
        assert report["ok"], report["failures"]
        assert report["serve"] is None


class TestBatchGate:
    def test_batch_regression_fails(self):
        report = regression_report(_report(batch_tps=100_000.0), BASELINE)
        assert not report["ok"]
        assert any("batch" in f for f in report["failures"])

    def test_batch_ratio_reported(self):
        report = regression_report(_report(batch_tps=1_500_000.0), BASELINE)
        assert report["batch"]["ratio"] == 1.5
        assert report["ok"], report["failures"]

    def test_quick_rows_mismatch_reports_but_does_not_gate(self):
        current = _report(batch_tps=100_000.0)
        current["batch"]["rows"] = 256  # quick-mode population
        report = regression_report(current, BASELINE)
        batch_failures = [
            f
            for f in report["failures"]
            if "batch" in f and "regressed" in f
        ]
        assert not batch_failures
        assert report["batch"]["ratio"] is not None

    def test_mismatch_verdict_fails(self):
        current = copy.deepcopy(_report())
        current["batch"]["verified_ok"] = False
        report = regression_report(current, BASELINE)
        assert not report["ok"]


class TestExplorerGate:
    def test_budget_constant_matches_gate(self):
        current = _report()
        current["explorer"][0]["transitions_per_sec"] = (
            25000.0 * (MIN_TPS_RATIO - 0.05)
        )
        report = regression_report(current, BASELINE)
        assert not report["ok"]

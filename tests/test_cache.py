"""Set-associative cache directory."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.line import CacheLine
from repro.core.states import LineState

M, E, S, I = (
    LineState.MODIFIED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


class TestGeometry:
    def test_address_decomposition(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2, line_size=32)
        assert cache.line_address(0) == 0
        assert cache.line_address(31) == 0
        assert cache.line_address(32) == 1
        assert cache.set_index(5) == 1
        assert cache.tag(5) == 1
        assert cache.address_of(1, 1) == 5

    def test_capacity(self):
        cache = SetAssociativeCache(num_sets=8, associativity=2, line_size=64)
        assert cache.capacity_bytes == 8 * 2 * 64

    @pytest.mark.parametrize("bad", [0, 3, 12])
    def test_non_power_of_two_sets_rejected(self, bad):
        with pytest.raises(ValueError):
            SetAssociativeCache(num_sets=bad)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(line_size=48)

    def test_zero_associativity_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(associativity=0)

    def test_replacement_geometry_must_match(self):
        from repro.cache.replacement import LruPolicy

        with pytest.raises(ValueError, match="geometry mismatch"):
            SetAssociativeCache(num_sets=4, replacement=LruPolicy(8, 2))


class TestLookupAndFill:
    def test_miss_on_empty(self):
        assert SetAssociativeCache().lookup(0) is None

    def test_fill_then_hit(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        cache.fill(5, S, 42)
        found = cache.lookup(5)
        assert found is not None
        _, _, line = found
        assert line.state is S and line.value == 42

    def test_probe_state_invalid_when_absent(self):
        assert SetAssociativeCache().probe_state(7) is I

    def test_conflicting_tags_coexist_up_to_associativity(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        cache.fill(1, S, 0)   # set 1
        cache.fill(5, E, 0)   # same set, different tag
        assert cache.lookup(1) and cache.lookup(5)

    def test_victim_prefers_invalid_way(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        cache.fill(1, S, 0)
        _, way, victim = cache.choose_victim(5)
        assert not victim.valid

    def test_victim_from_replacement_when_full(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        cache.fill(1, S, 0)
        cache.fill(5, S, 0)
        cache.touch(*cache.lookup(1)[:2])  # protect line 1
        _, _, victim = cache.choose_victim(9)
        assert victim.tag == cache.tag(5)

    def test_fill_reuses_named_way(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        cache.fill(1, S, 0, way=1)
        _, way, _ = cache.lookup(1)
        assert way == 1


class TestInspection:
    def test_valid_lines_roundtrip_addresses(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        for address in (0, 2, 5, 9):  # sets 0, 2, 1, 1 -- no overflow
            cache.fill(address, S, address * 10)
        found = dict(cache.valid_lines())
        assert set(found) == {0, 2, 5, 9}
        assert found[5].value == 50

    def test_occupancy(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        cache.fill(0, S, 0)
        cache.fill(1, M, 0)
        assert cache.occupancy() == 2

    def test_contains(self):
        cache = SetAssociativeCache()
        cache.fill(3, E, 0)
        assert 3 in cache and 4 not in cache


class TestCacheLine:
    def test_dirty_tracks_ownership(self):
        line = CacheLine(state=M)
        assert line.dirty
        line.state = LineState.OWNED
        assert line.dirty
        line.state = S
        assert not line.dirty

    def test_invalidate(self):
        line = CacheLine(state=E)
        line.invalidate()
        assert not line.valid

"""The relaxation closure (section 3.3, items 9-12) and membership
predicates of :class:`MoesiClassTable`."""

import pytest

from repro.core.actions import (
    CH_O_OR_M,
    CH_S_OR_E,
    BusOp,
    LocalAction,
    SnoopAction,
)
from repro.core.events import BusEvent, LocalEvent
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState
from repro.core.transitions import MoesiClassTable

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)

TABLE = MoesiClassTable()
STRICT = MoesiClassTable(include_relaxations=False)


def _local(next_state, *, ca=False, im=False, bc=False, op=BusOp.NONE,
           bc_dont_care=False):
    return LocalAction(next_state, MasterSignals(ca, im, bc), op,
                       bc_dont_care=bc_dont_care)


def _snoop(next_state, *, ch=False, di=False, sl=False):
    return SnoopAction(next_state, SnoopResponse(ch=ch, di=di, sl=sl))


class TestRelaxation9:
    """CH:O/M may be replaced by O; M may become O at any time."""

    def test_o_write_with_plain_o_result(self):
        action = _local(O, ca=True, im=True, bc=True, op=BusOp.WRITE)
        assert TABLE.permits_local(O, LocalEvent.WRITE, action)

    def test_strict_table_rejects_it(self):
        action = _local(O, ca=True, im=True, bc=True, op=BusOp.WRITE)
        assert not STRICT.permits_local(O, LocalEvent.WRITE, action)

    def test_conditional_original_still_permitted(self):
        action = _local(CH_O_OR_M, ca=True, im=True, bc=True, op=BusOp.WRITE)
        assert TABLE.permits_local(O, LocalEvent.WRITE, action)


class TestRelaxation10:
    """CH:S/E may be replaced by S (Berkeley's read miss)."""

    def test_read_miss_to_plain_s(self):
        action = _local(S, ca=True, op=BusOp.READ)
        assert TABLE.permits_local(I, LocalEvent.READ, action)

    def test_pass_from_o_landing_s(self):
        action = _local(S, ca=True, op=BusOp.WRITE, bc_dont_care=False)
        assert TABLE.permits_local(O, LocalEvent.PASS, action)

    def test_pass_from_m_landing_s(self):
        """Berkeley has no E: its push-and-keep lands in S via 10."""
        action = _local(S, ca=True, op=BusOp.WRITE)
        assert TABLE.permits_local(M, LocalEvent.PASS, action)


class TestRelaxation11:
    """On bus events, any transition to E or S may become I (no CH)."""

    def test_s_col5_may_invalidate(self):
        assert TABLE.permits_snoop(S, BusEvent.CACHE_READ, _snoop(I))

    def test_e_col7_may_invalidate(self):
        assert TABLE.permits_snoop(E, BusEvent.UNCACHED_READ, _snoop(I))

    def test_invalidating_variant_must_not_assert_ch(self):
        """CH means "I will retain": an invalidating snooper may not lie."""
        lying = _snoop(I, ch=True)
        assert not TABLE.permits_snoop(S, BusEvent.CACHE_READ, lying)

    def test_strict_rejects_invalidation_variant(self):
        assert not STRICT.permits_snoop(S, BusEvent.CACHE_READ, _snoop(I))

    def test_owner_cannot_relax_to_invalid_without_supplying(self):
        """M on col 5 must still intervene; plain I is out of class."""
        assert not TABLE.permits_snoop(M, BusEvent.CACHE_READ, _snoop(I))


class TestRelaxation12:
    """E may be replaced by M (with a write-back cost)."""

    def test_read_miss_conditional_to_m(self):
        """E is replaced by M *inside* the conditional: CH:S/M."""
        from repro.core.actions import ConditionalState

        action = _local(ConditionalState(S, M), ca=True, op=BusOp.READ)
        assert TABLE.permits_local(I, LocalEvent.READ, action)

    def test_read_miss_unconditional_m_rejected(self):
        """Plain M regardless of CH would claim exclusivity while other
        copies may exist -- not licensed by any relaxation."""
        action = _local(M, ca=True, op=BusOp.READ)
        assert not TABLE.permits_local(I, LocalEvent.READ, action)

    def test_pass_from_m_landing_m_not_permitted(self):
        """Keeping M after a push is NOT licensed: the push's entry is E,
        and 12 substitutes E->M only transitively via local entry; check
        documented closure shape."""
        action = _local(M, ca=True, op=BusOp.WRITE, bc_dont_care=False)
        # E -> {E, S, M} closure includes M, so this IS permitted: a cache
        # may push and remain owner of the (now clean) line.
        assert TABLE.permits_local(M, LocalEvent.PASS, action)


class TestOutOfClassRejected:
    """Things no relaxation licenses."""

    def test_silent_shared_write(self):
        action = _local(M)  # no bus activity at all
        assert not TABLE.permits_local(S, LocalEvent.WRITE, action)

    def test_silent_owned_flush(self):
        action = _local(I)
        assert not TABLE.permits_local(M, LocalEvent.FLUSH, action)

    def test_read_miss_without_bus(self):
        action = _local(S)
        assert not TABLE.permits_local(I, LocalEvent.READ, action)

    def test_write_once_first_write(self):
        """Write-Once's S-write ("E,CA,IM,W") is outside the class."""
        action = _local(E, ca=True, im=True, op=BusOp.WRITE)
        assert not TABLE.permits_local(S, LocalEvent.WRITE, action)

    def test_firefly_shared_write(self):
        """Firefly's CH:S/E broadcast write is outside the class."""
        action = _local(CH_S_OR_E, ca=True, im=True, bc=True, op=BusOp.WRITE)
        assert not TABLE.permits_local(S, LocalEvent.WRITE, action)

    def test_snoop_staying_shared_on_invalidate(self):
        assert not TABLE.permits_snoop(
            S, BusEvent.CACHE_READ_FOR_MODIFY, _snoop(S, ch=True)
        )

    def test_double_owner_on_broadcast(self):
        assert not TABLE.permits_snoop(
            O, BusEvent.CACHE_BROADCAST_WRITE, _snoop(O, ch=True, sl=True)
        )


class TestClosureSets:
    def test_local_set_contains_literal_entries(self):
        actions = TABLE.local_action_set(S, LocalEvent.WRITE)
        notations = {a.notation() for a in actions}
        assert "CH:O/M,CA,IM,BC,W" in notations
        assert "M,CA,IM" in notations

    def test_snoop_set_grows_under_relaxation(self):
        strict = STRICT.snoop_action_set(S, BusEvent.CACHE_READ)
        relaxed = TABLE.snoop_action_set(S, BusEvent.CACHE_READ)
        assert strict < relaxed

    def test_all_cells_iterates_both_tables(self):
        cells = list(TABLE.all_cells())
        assert len(cells) == 5 * 4 + 5 * 6

    def test_ch_dont_care_matches_either_polarity(self):
        """M on col 7 is "M,DI,CH?": asserting or not asserting CH both
        satisfy the class."""
        assert TABLE.permits_snoop(
            M, BusEvent.UNCACHED_READ, _snoop(M, ch=True, di=True)
        )
        assert TABLE.permits_snoop(
            M, BusEvent.UNCACHED_READ, _snoop(M, ch=False, di=True)
        )

    def test_bc_dont_care_matches_broadcast_push(self):
        """"E,CA,BC?,W": pushing with BC asserted is within the entry."""
        action = LocalAction(
            E, MasterSignals(ca=True, bc=True), BusOp.WRITE
        )
        assert TABLE.permits_local(M, LocalEvent.PASS, action)

"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["tables"],
            ["figures"],
            ["membership"],
            ["verify", "--quick"],
            ["verify", "--quick", "--workers", "2"],
            ["shootout", "--references", "100"],
            ["bench", "--quick", "--workers", "2"],
            ["hierarchy", "--references", "50"],
            ["run", "moesi", "--references", "100"],
            ["run", "--protocol", "illinois", "--trace", "out.trace.json"],
            ["run", "moesi", "--json", "--metrics"],
            ["verify", "--quick", "--trace", "v.jsonl", "--json"],
            ["fuzz", "--seeds", "10"],
            ["fuzz", "--seeds", "10", "--workers", "2", "--inject",
             "illinois-silent-im"],
            ["fuzz", "--replay", "some/file.json"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)


class TestCommands:
    def test_tables_exit_zero_and_report(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "all match" in out

    def test_tables_render(self, capsys):
        assert main(["tables", "--render"]) == 0
        out = capsys.readouterr().out
        assert "CH:O/M,CA,IM,BC,W" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 4" in out

    def test_membership_all(self, capsys):
        assert main(["membership"]) == 0
        out = capsys.readouterr().out
        assert "Berkeley:" in out and "Illinois:" in out

    def test_membership_selected_verbose(self, capsys):
        assert main(["membership", "write-once", "-v"]) == 0
        out = capsys.readouterr().out
        assert "adapted" in out
        assert "E,CA,IM,W" in out  # the out-of-class cell printed

    def test_verify_quick(self, capsys):
        assert main(["verify", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "as expected" in out

    def test_verify_quick_parallel_matches_serial(self, capsys):
        assert main(["verify", "--quick"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["verify", "--quick", "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out

    def test_bench_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_perf.json"
        assert main(["bench", "--quick", "--workers", "2",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Serial vs parallel" in out and "states_per_sec" in out
        import json

        report = json.loads(out_path.read_text())
        assert report["suite"] == "repro-bench"
        assert report["matrix"]["rows_identical"]

    def test_shootout_small(self, capsys):
        assert main(["shootout", "--references", "200"]) == 0
        out = capsys.readouterr().out
        assert "moesi" in out and "berkeley" in out

    def test_hierarchy_small(self, capsys):
        assert main(["hierarchy", "--references", "200"]) == 0
        out = capsys.readouterr().out
        assert "violations: 0" in out

    def test_run_synthetic(self, capsys):
        assert main(["run", "dragon", "--references", "200", "--check",
                     "--atomic"]) == 0
        out = capsys.readouterr().out
        assert "dragon" in out

    def test_run_workload_file(self, tmp_path, capsys):
        path = tmp_path / "t.trc"
        path.write_text(
            "# two cpus\ncpu0 W 0x0\ncpu1 R 0x0\ncpu1 W 0x20\ncpu0 R 0x20\n"
        )
        assert main(["run", "moesi", "--workload", str(path), "--check",
                     "--atomic"]) == 0
        out = capsys.readouterr().out
        assert "4 references" in out

    def test_run_protocol_option_writes_chrome_trace(self, tmp_path,
                                                     capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        path = tmp_path / "out.trace.json"
        assert main(["run", "--protocol", "illinois", "--references",
                     "300", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {path}" in out
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_unknown_protocol_errors(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            main(["run", "nonsense", "--references", "10"])


class TestDiagramAndAblation:
    def test_diagram_adjacency(self, capsys):
        assert main(["diagram", "berkeley"]) == 0
        out = capsys.readouterr().out
        assert "Berkeley transition diagram" in out

    def test_diagram_dot(self, capsys):
        assert main(["diagram", "moesi", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_ablation_geometry(self, capsys):
        assert main(["ablation", "geometry", "--references", "400"]) == 0
        out = capsys.readouterr().out
        assert "associativity" in out

    def test_ablation_line_size(self, capsys):
        assert main(["ablation", "line-size", "--references", "400"]) == 0
        out = capsys.readouterr().out
        assert "line_size" in out


class TestFuzzCommand:
    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        assert main(["fuzz", "--seeds", "15",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fuzz campaign: 15 seeds" in out
        assert "failures:            0" in out

    def test_serial_and_parallel_output_identical(self, tmp_path, capsys):
        main(["fuzz", "--seeds", "20", "--workers", "0",
              "--out", str(tmp_path / "a")])
        serial = capsys.readouterr().out
        main(["fuzz", "--seeds", "20", "--workers", "2",
              "--out", str(tmp_path / "b")])
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_injected_bug_fails_shrinks_and_replays(self, tmp_path, capsys):
        """End-to-end acceptance path: inject -> catch -> shrink ->
        repro file -> --replay re-fails."""
        out_dir = tmp_path / "repros"
        assert main(["fuzz", "--seeds", "30", "--inject",
                     "illinois-silent-im", "--out", str(out_dir)]) == 1
        out = capsys.readouterr().out
        assert "repro_seed" in out
        repro = sorted(out_dir.glob("repro_seed*.json"))[0]
        assert main(["fuzz", "--replay", str(repro)]) == 1
        replay_out = capsys.readouterr().out
        assert "reproduced:" in replay_out

    def test_json_envelope(self, tmp_path, capsys):
        import json

        assert main(["fuzz", "--seeds", "10", "--out",
                     str(tmp_path / "r"), "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["command"] == "fuzz"
        assert envelope["ok"] is True
        assert envelope["data"]["seeds_run"] == 10
        assert envelope["data"]["failures"] == []
        assert envelope["metrics"]["fuzz.seeds_run"] == 10

    def test_unknown_bug_exits_two(self, capsys):
        assert main(["fuzz", "--seeds", "5", "--inject", "nope"]) == 2
        assert "known:" in capsys.readouterr().err

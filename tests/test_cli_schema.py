"""Every subcommand's --json output follows one envelope schema:
``{"command", "ok", "data", "metrics"}``."""

import json

import pytest

from repro.cli import main

ENVELOPE_KEYS = {"command", "ok", "data", "metrics"}


def _envelope(capsys, argv):
    code = main(argv)
    out = capsys.readouterr().out
    envelope = json.loads(out)
    return code, envelope


@pytest.mark.parametrize(
    "command,argv",
    [
        ("tables", ["tables", "--json"]),
        ("figures", ["figures", "--json"]),
        ("membership", ["membership", "moesi", "dragon", "--json"]),
        ("verify", ["verify", "--quick", "--json"]),
        ("shootout", ["shootout", "--references", "200", "--json"]),
        ("hierarchy", ["hierarchy", "--references", "100", "--json"]),
        ("diagram", ["diagram", "moesi", "--json"]),
        ("ablation", ["ablation", "geometry", "--references", "200",
                      "--json"]),
        ("run", ["run", "moesi", "--references", "100", "--json"]),
        ("fuzz", ["fuzz", "--seeds", "5", "--json"]),
    ],
)
def test_envelope_schema(capsys, tmp_path, command, argv, monkeypatch):
    monkeypatch.chdir(tmp_path)  # fuzz writes repro files to cwd-relative dir
    code, envelope = _envelope(capsys, argv)
    assert set(envelope) == ENVELOPE_KEYS
    assert envelope["command"] == command
    assert isinstance(envelope["ok"], bool)
    assert isinstance(envelope["metrics"], dict)
    assert code == (0 if envelope["ok"] else 1)


def test_bench_envelope(capsys, tmp_path):
    code, envelope = _envelope(
        capsys,
        ["bench", "--quick", "--workers", "2", "--json",
         "--out", str(tmp_path / "bench.json")],
    )
    assert set(envelope) == ENVELOPE_KEYS
    assert envelope["command"] == "bench"
    assert envelope["data"]["suite"] == "repro-bench"
    assert code == 0


def test_run_envelope_payload(capsys):
    code, envelope = _envelope(
        capsys, ["run", "--protocol", "illinois", "--references", "200",
                 "--json"])
    assert code == 0 and envelope["ok"] is True
    assert envelope["data"]["row"]["system"] == "illinois"
    assert envelope["data"]["violations"] == 0
    assert envelope["metrics"]["cache.accesses"] == 200


def test_verify_envelope_payload(capsys):
    code, envelope = _envelope(capsys, ["verify", "--quick", "--json"])
    assert code == 0
    rows = envelope["data"]["rows"]
    assert rows and all(row["ok"] for row in rows)
    assert envelope["metrics"]["verify.cases"] == len(rows)
    assert envelope["metrics"]["verify.failures"] == 0


def test_trace_path_lands_in_envelope(capsys, tmp_path):
    path = tmp_path / "run.trace.json"
    code, envelope = _envelope(
        capsys, ["run", "moesi", "--references", "100", "--trace",
                 str(path), "--json"])
    assert code == 0
    assert envelope["data"]["trace_path"] == str(path)
    from repro.obs.export import validate_chrome_trace

    assert validate_chrome_trace(json.loads(path.read_text())) == []


def test_json_output_is_quiet(capsys):
    """--json replaces the human report: stdout is exactly one JSON doc."""
    main(["shootout", "--references", "200", "--json"])
    out = capsys.readouterr().out
    json.loads(out)  # would raise if the table were mixed in

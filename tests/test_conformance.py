"""The conformance harness over the extended scenario space.

Three new kinds of registry citizen, each pinned from every angle the
harness owns:

* **adaptive update/invalidate hybrids** (``moesi-adaptive-threshold``,
  ``moesi-adaptive-competitive``) -- must be *full members* of the MOESI
  class (every adaptive pick stays inside the permitted choice sets),
  with golden tests for the per-line mode switches themselves;
* **MESIF**, the out-of-class negative fixture -- the membership
  validator must reject it with a precise per-cell diagnostic, while the
  protocol still runs end-to-end (explorer, shootout, fuzzer);
* **arbitration disciplines** -- every scenario carries one, and the
  arbitrated timed replay must converge to a coherent state under each.

The heavyweight closing tests (50+-seed fuzz campaigns, full sweeps) are
marked ``conformance`` so CI can run them as a dedicated job
(``pytest -m conformance``); they also run in the default suite.
"""

import dataclasses

import pytest

from repro.bus.arbiter import ARBITER_DISCIPLINES
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import LocalContext, SnoopContext
from repro.core.states import LineState
from repro.core.validation import (
    MembershipError,
    assert_member,
    check_membership,
)
from repro.protocols.registry import make_protocol

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)

ADAPTIVE_SPECS = ("moesi-adaptive-threshold", "moesi-adaptive-competitive")


# ---------------------------------------------------------------------------
# Adaptive hybrids: full class members, by construction and by checker.
# ---------------------------------------------------------------------------
class TestAdaptiveHybridsAreMembers:
    @pytest.mark.parametrize("spec", ADAPTIVE_SPECS)
    def test_full_member(self, spec):
        report = assert_member(make_protocol(spec), full=True)
        assert report.is_full_member, report.diagnostic()

    @pytest.mark.parametrize("spec", ADAPTIVE_SPECS)
    def test_assert_member_returns_clean_report(self, spec):
        report = assert_member(make_protocol(spec))
        assert not report.issues and not report.uses_busy


class TestThresholdAdaptiveGolden:
    """Golden behaviour of the per-line threshold hybrid (threshold=2)."""

    def _protocol(self):
        from repro.core.policy import ThresholdAdaptivePolicy
        from repro.protocols.moesi import MoesiProtocol

        return MoesiProtocol(ThresholdAdaptivePolicy(threshold=2))

    def test_writer_switches_update_to_invalidate(self):
        protocol = self._protocol()
        ctx = LocalContext(address=0x100)
        # Writes 1..threshold broadcast-update (BC asserted)...
        for _ in range(2):
            action = protocol.local_action(O, LocalEvent.WRITE, ctx)
            assert action.signals.bc, action
        # ...the next write crosses the threshold and invalidates.
        action = protocol.local_action(O, LocalEvent.WRITE, ctx)
        assert action.signals.im and not action.signals.bc, action
        assert action.next_state is M

    def test_remote_read_resets_writer_to_update(self):
        protocol = self._protocol()
        ctx = LocalContext(address=0x100)
        for _ in range(3):
            protocol.local_action(O, LocalEvent.WRITE, ctx)
        # A snooped remote read of the line resets the write run.
        protocol.snoop_action(
            S, BusEvent.CACHE_READ, SnoopContext(address=0x100)
        )
        action = protocol.local_action(O, LocalEvent.WRITE, ctx)
        assert action.signals.bc, action

    def test_counters_are_per_line(self):
        protocol = self._protocol()
        hot, cold = LocalContext(address=0x100), LocalContext(address=0x900)
        for _ in range(3):
            protocol.local_action(O, LocalEvent.WRITE, hot)
        # The hot line switched; an unrelated line still updates.
        assert not protocol.local_action(O, LocalEvent.WRITE, hot).signals.bc
        assert protocol.local_action(O, LocalEvent.WRITE, cold).signals.bc

    def test_snooper_drops_after_unused_updates(self):
        protocol = self._protocol()
        ctx = SnoopContext(address=0x200)
        # Updates 1..threshold are connected to (copy retained)...
        for _ in range(2):
            action = protocol.snoop_action(
                S, BusEvent.CACHE_BROADCAST_WRITE, ctx
            )
            assert action.retains_copy, action
        # ...then the line is dropped instead.
        action = protocol.snoop_action(S, BusEvent.CACHE_BROADCAST_WRITE, ctx)
        assert not action.retains_copy
        assert action.next_state is I

    def test_local_access_resets_snooper(self):
        protocol = self._protocol()
        snoop_ctx = SnoopContext(address=0x200)
        for _ in range(3):
            protocol.snoop_action(S, BusEvent.CACHE_BROADCAST_WRITE, snoop_ctx)
        # The line is used locally again: updates are worth it once more.
        protocol.local_action(S, LocalEvent.READ, LocalContext(address=0x200))
        action = protocol.snoop_action(
            S, BusEvent.CACHE_BROADCAST_WRITE, snoop_ctx
        )
        assert action.retains_copy, action

    def test_threshold_validates(self):
        with pytest.raises(ValueError):
            from repro.core.policy import ThresholdAdaptivePolicy

            ThresholdAdaptivePolicy(threshold=0)


class TestCompetitiveAdaptiveGolden:
    """Golden behaviour of the per-line competitive hybrid (budget=2)."""

    def _protocol(self):
        from repro.core.policy import CompetitiveAdaptivePolicy
        from repro.protocols.moesi import MoesiProtocol

        return MoesiProtocol(CompetitiveAdaptivePolicy(budget=2))

    def test_snooper_spends_credits_then_invalidates(self):
        protocol = self._protocol()
        ctx = SnoopContext(address=0x300)
        action = protocol.snoop_action(S, BusEvent.CACHE_BROADCAST_WRITE, ctx)
        assert action.retains_copy, action  # credit left after 1st update
        action = protocol.snoop_action(S, BusEvent.CACHE_BROADCAST_WRITE, ctx)
        assert not action.retains_copy  # budget exhausted
        assert action.next_state is I

    def test_local_access_refills_budget(self):
        protocol = self._protocol()
        ctx = SnoopContext(address=0x300)
        protocol.snoop_action(S, BusEvent.CACHE_BROADCAST_WRITE, ctx)
        protocol.local_action(S, LocalEvent.READ, LocalContext(address=0x300))
        action = protocol.snoop_action(S, BusEvent.CACHE_BROADCAST_WRITE, ctx)
        assert action.retains_copy, action

    def test_writer_always_updates(self):
        protocol = self._protocol()
        ctx = LocalContext(address=0x300)
        for _ in range(6):
            action = protocol.local_action(O, LocalEvent.WRITE, ctx)
            assert action.signals.bc, action

    def test_budget_validates(self):
        with pytest.raises(ValueError):
            from repro.core.policy import CompetitiveAdaptivePolicy

            CompetitiveAdaptivePolicy(budget=0)


# ---------------------------------------------------------------------------
# MESIF: the negative fixture.
# ---------------------------------------------------------------------------
#: Every cell of the MESIF tables, in the repo's rendered notation (the
#: F state rides the O slot).  Golden: any table edit must be deliberate.
MESIF_LOCAL_GOLDEN = {
    (M, LocalEvent.READ): "M",
    (O, LocalEvent.READ): "O",
    (E, LocalEvent.READ): "E",
    (S, LocalEvent.READ): "S",
    (I, LocalEvent.READ): "CH:O/E,CA,R",
    (M, LocalEvent.WRITE): "M",
    (E, LocalEvent.WRITE): "M",
    (S, LocalEvent.WRITE): "M,CA,IM",
    (O, LocalEvent.WRITE): "M,CA,IM",
    (I, LocalEvent.WRITE): "M,CA,IM,R",
    (M, LocalEvent.PASS): "E,CA,W",
    (M, LocalEvent.FLUSH): "I,W",
    (E, LocalEvent.FLUSH): "I",
    (S, LocalEvent.FLUSH): "I",
    (O, LocalEvent.FLUSH): "I",
}

MESIF_SNOOP_GOLDEN = {
    (M, BusEvent.CACHE_READ): "BS;S,CA,W",
    (M, BusEvent.CACHE_READ_FOR_MODIFY): "BS;I,CA,W",
    (E, BusEvent.CACHE_READ): "S,CH",
    (E, BusEvent.CACHE_READ_FOR_MODIFY): "I",
    (S, BusEvent.CACHE_READ): "S,CH",
    (S, BusEvent.CACHE_READ_FOR_MODIFY): "I",
    (O, BusEvent.CACHE_READ): "S,CH,DI",
    (O, BusEvent.CACHE_READ_FOR_MODIFY): "I",
    (I, BusEvent.CACHE_READ): "I",
    (I, BusEvent.CACHE_READ_FOR_MODIFY): "I",
}


class TestMesifGoldenTable:
    @pytest.mark.parametrize(
        "cell", sorted(MESIF_LOCAL_GOLDEN, key=str), ids=str
    )
    def test_local_cell(self, cell):
        protocol = make_protocol("mesif")
        state, event = cell
        assert str(protocol.local_action(state, event)) == \
            MESIF_LOCAL_GOLDEN[cell]

    @pytest.mark.parametrize(
        "cell", sorted(MESIF_SNOOP_GOLDEN, key=str), ids=str
    )
    def test_snoop_cell(self, cell):
        protocol = make_protocol("mesif")
        state, event = cell
        assert str(protocol.snoop_action(state, event)) == \
            MESIF_SNOOP_GOLDEN[cell]

    def test_tables_cover_exactly_the_golden_cells(self):
        protocol = make_protocol("mesif")
        assert set(protocol.local_transitions) == set(MESIF_LOCAL_GOLDEN)
        assert set(protocol.snoop_transitions) == set(MESIF_SNOOP_GOLDEN)


class TestMesifRejected:
    """The validator must refuse MESIF -- with the exact reasons."""

    def test_not_a_member(self):
        report = check_membership(make_protocol("mesif"))
        assert not report.is_member
        assert report.is_adapted  # dirty data moves via the BS abort-push

    def test_assert_member_raises_with_precise_diagnostic(self):
        with pytest.raises(MembershipError) as excinfo:
            assert_member(make_protocol("mesif"))
        diagnostic = str(excinfo.value)
        # The four designed clashes, cell by cell:
        assert "state I, event Read: CH:O/E,CA,R" in diagnostic  # fill to F
        assert "state O, event Flush: I" in diagnostic  # silent F drop
        # F hands itself off on a snooped read (col 5)...
        assert "state O, event CA,~IM,~BC (col 5): S,CH,DI" in diagnostic
        # ...and refuses to supply on a read-for-modify (col 6).
        assert "state O, event CA,IM,~BC (col 6): I" in diagnostic
        # The abort-push reliance is named too.
        assert "relies on the BS (busy) abort adaptation" in diagnostic

    def test_exactly_four_out_of_class_cells(self):
        report = check_membership(make_protocol("mesif"))
        assert len(report.issues) == 4, report.diagnostic()

    def test_report_carried_on_the_error(self):
        with pytest.raises(MembershipError) as excinfo:
            assert_member(make_protocol("mesif"))
        assert excinfo.value.report.protocol_name == "MESIF"


# ---------------------------------------------------------------------------
# Explorer cross-checks: the new entries run clean where they should.
# ---------------------------------------------------------------------------
@pytest.mark.conformance
class TestExplorerCrossChecks:
    def test_mesif_homogeneous_is_coherent(self):
        from repro.verify.explorer import explore

        result = explore(["mesif", "mesif"], label="conformance:mesif")
        assert not result.violations, result.violations[0]
        assert result.states_explored > 1

    @pytest.mark.parametrize("spec", ADAPTIVE_SPECS)
    def test_adaptive_mixes_with_class_members(self, spec):
        from repro.verify.explorer import explore

        result = explore([spec, "moesi"], label=f"conformance:{spec}+moesi")
        assert not result.violations, result.violations[0]

    def test_adaptive_hybrids_mix_with_each_other(self):
        from repro.verify.explorer import explore

        result = explore(
            list(ADAPTIVE_SPECS), label="conformance:adaptive+adaptive"
        )
        assert not result.violations, result.violations[0]


# ---------------------------------------------------------------------------
# End-to-end: fuzz campaigns and the arbitrated replay.
# ---------------------------------------------------------------------------
@pytest.mark.conformance
class TestScenarioSpaceFuzz:
    def test_default_pool_with_new_entries_50_seeds(self):
        """The default pool now draws adaptive hybrids and MESIF; 50+
        seeds of mixed scenarios run with zero divergence."""
        from repro.fuzz import CampaignConfig, ScenarioConfig
        from repro.fuzz.campaign import _run_campaign

        config = CampaignConfig(seeds=60, scenario=ScenarioConfig())
        report = _run_campaign(config, workers=0)
        assert report.seeds_run == 60
        assert not report.failures, report.failures[0].failure

    def test_homogeneous_mesif_50_seeds(self):
        """MESIF fuzzes clean against its own table (negative fixture
        still *runs* correctly -- it is rejected for class membership,
        not for coherence)."""
        from repro.fuzz import CampaignConfig, ScenarioConfig
        from repro.fuzz.campaign import _run_campaign

        config = CampaignConfig(
            seeds=50,
            scenario=ScenarioConfig(p_foreign=1.0, foreign_pool=("mesif",)),
        )
        report = _run_campaign(config, workers=0)
        assert report.seeds_run == 50
        assert not report.failures, report.failures[0].failure

    def test_adaptive_only_pool_50_seeds(self):
        from repro.fuzz import CampaignConfig, ScenarioConfig
        from repro.fuzz.campaign import _run_campaign

        config = CampaignConfig(
            seeds=50,
            scenario=ScenarioConfig(p_foreign=0.0, class_pool=ADAPTIVE_SPECS),
        )
        report = _run_campaign(config, workers=0)
        assert report.seeds_run == 50
        assert not report.failures, report.failures[0].failure


@pytest.mark.conformance
class TestArbitratedReplay:
    @pytest.mark.parametrize("discipline", ARBITER_DISCIPLINES)
    def test_replay_is_coherent_under_every_discipline(self, discipline):
        """The same schedules, re-ordered by each arbiter, still converge
        to a coherent quiescent state."""
        from repro.fuzz import generate_scenario, run_scenario_arbitrated
        from repro.fuzz.scenario import ScenarioConfig

        config = ScenarioConfig(disciplines=(discipline,))
        for seed in range(16):
            scenario = generate_scenario(seed, config)
            assert scenario.discipline == discipline
            result = run_scenario_arbitrated(scenario)
            assert result.ok, f"seed {seed}: {result.failure}"

    def test_scenarios_draw_every_discipline(self):
        from repro.fuzz import generate_scenario

        drawn = {generate_scenario(seed).discipline for seed in range(40)}
        assert drawn == set(ARBITER_DISCIPLINES)


@pytest.mark.conformance
class TestDisciplineSweep:
    """The Nikolov & Lerato comparative study, in miniature."""

    def test_sweep_shapes_and_fairness(self):
        from repro.analysis.compare import (
            DEFAULT_DISCIPLINES,
            arbitration_discipline_sweep,
        )

        rows = arbitration_discipline_sweep(references=600, processors=3)
        assert [row["discipline"] for row in rows] == list(DEFAULT_DISCIPLINES)
        by_discipline = {row["discipline"]: row for row in rows}
        # The priority slot visibly shortens the favored master's wait...
        priority = by_discipline["priority:cpu0=1"]
        favored = priority["per_unit_wait_us"]["cpu0"]
        others = [wait for unit, wait in priority["per_unit_wait_us"].items()
                  if unit != "cpu0"]
        assert favored < min(others)
        # ...at a visible fairness cost versus FCFS and round-robin.
        assert priority["wait_spread"] > by_discipline["fcfs"]["wait_spread"]
        assert priority["wait_spread"] > \
            by_discipline["round-robin"]["wait_spread"]

    def test_mesif_runs_the_shootout(self):
        """The negative fixture is still a usable baseline."""
        from repro.analysis.compare import run_protocol_on_trace
        from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload

        trace = SyntheticWorkload(
            SyntheticConfig(processors=2, p_shared=0.4, p_write=0.3), seed=5
        ).trace(500)
        report = run_protocol_on_trace("mesif", trace, check=False)
        assert report.accesses == 500
        assert report.bus.transactions > 0

"""Cache controller internals beyond the per-protocol scenarios:
Read>Write chaining, eviction paths, snoop bookkeeping, error handling."""

import pytest

from repro.bus.futurebus import Futurebus
from repro.cache.cache import SetAssociativeCache
from repro.cache.controller import CacheController
from repro.core.protocol import ProtocolGapError
from repro.memory.main_memory import MainMemory
from repro.protocols.registry import make_protocol


class TestAttachment:
    def test_requires_bus_for_misses(self):
        controller = CacheController("lonely", make_protocol("moesi"))
        with pytest.raises(RuntimeError, match="not attached"):
            controller.read(0)

    def test_attach_registers_with_bus(self):
        bus = Futurebus(MainMemory())
        controller = CacheController("c", make_protocol("moesi"))
        controller.attach_to(bus)
        assert bus.agent("c") is controller


class TestReadThenWrite:
    def test_dragon_write_miss_chains(self, mini):
        """Read>Write executes as two bus transactions at most."""
        rig = mini("dragon", "dragon")
        rig[0].read(0)
        before = rig[1].stats.bus_transactions
        rig[1].write(0, 5)
        # Read (1 txn) + broadcast write (1 txn).
        assert rig[1].stats.bus_transactions == before + 2

    def test_read_then_write_silent_second_half(self, mini):
        """Alone, Dragon's Read>Write lands E; the write is silent."""
        rig = mini("dragon", "dragon")
        rig[0].write(0, 5)
        assert rig[0].stats.bus_transactions == 1


class TestEvictionPaths:
    def test_dirty_victim_written_back_before_fill(self, mini):
        rig = mini("moesi", num_sets=1, associativity=2)
        rig[0].write(0, 1)     # M
        rig[0].write(32, 2)    # M (second way)
        rig[0].write(64, 3)    # evicts LRU (line 0) -> write-back
        assert rig.memory.peek(0) == 1
        assert rig[0].state_of(0).letter == "I"
        assert rig[0].stats.write_backs == 1

    def test_clean_victim_dropped_silently(self, mini):
        rig = mini("moesi", num_sets=1, associativity=1)
        rig[0].read(0)
        writes_before = rig.memory.stats.writes
        rig[0].read(32)
        assert rig.memory.stats.writes == writes_before
        assert rig[0].stats.evictions == 1

    def test_flush_absent_line_is_noop(self, mini):
        rig = mini("moesi")
        rig[0].flush_line(123)  # nothing happens
        assert rig[0].stats.write_backs == 0

    def test_clean_line_on_unowned_state_is_noop(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].read(0)  # E: nothing to push
        before = rig[0].stats.bus_transactions
        rig[0].clean_line(0)
        assert rig[0].stats.bus_transactions == before


class TestSnoopBookkeeping:
    def test_pending_cleared_after_finalize(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].read(0)
        rig[1].read(0)
        assert rig[0]._pending is None
        assert rig[1]._pending is None

    def test_snoop_miss_responds_nothing(self, mini):
        from repro.core.signals import SnoopResponse
        rig = mini("moesi", "moesi")
        rig[0].read(0)  # u1 has nothing; its response was NONE
        # Directly probe:
        from repro.bus.transaction import Transaction
        from repro.core.actions import BusOp
        from repro.core.signals import MasterSignals

        txn = Transaction("x", 99, MasterSignals(ca=True), BusOp.READ,
                          serial=999)
        assert rig[1].snoop(txn) == SnoopResponse.NONE

    def test_protocol_gap_surfaces_as_error(self, mini):
        """An undefined snoop cell raises ProtocolGapError (section 4)."""
        rig = mini("illinois", "moesi")
        rig[0].read(0)
        rig[1].read(0)
        with pytest.raises(ProtocolGapError, match="col 8"):
            rig[1].write(0, 1)  # MOESI broadcasts; Illinois has no col 8


class TestValueSemantics:
    def test_read_returns_installed_token(self, mini):
        rig = mini("moesi", "moesi")
        rig.memory.poke(0, 77)
        assert rig[0].read(0) == 77

    def test_write_token_wins_over_fetched_data(self, mini):
        """Read-for-ownership fetches, then the new token overwrites."""
        rig = mini("moesi", "moesi")
        rig.memory.poke(0, 77)
        rig[0].write(0, 5)
        assert rig[0].value_of(0) == 5
        assert rig[0].read(0) == 5

    def test_cached_lines_iteration(self, mini):
        rig = mini("moesi")
        rig[0].read(0)
        rig[0].write(32, 2)
        entries = {addr: (state.letter, value)
                   for addr, state, value in rig[0].cached_lines()}
        assert entries[0] == ("E", 0)
        assert entries[1] == ("M", 2)

    def test_miss_ratio_property(self, mini):
        rig = mini("moesi")
        rig[0].read(0)
        rig[0].read(0)
        assert rig[0].stats.miss_ratio == pytest.approx(0.5)

"""Pre-``repro.api`` entry points keep working but warn exactly once."""

import warnings

import pytest

from repro.deprecation import reset_deprecation_warnings
from repro.system.system import BoardSpec, System
from repro.workloads import ping_pong


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def _deprecations(caught):
    return [w for w in caught
            if issubclass(w.category, DeprecationWarning)]


def _timed_runner():
    from repro.system.runner import Runner, timed_run_from_trace

    system = System([BoardSpec("cpu0", "moesi"),
                     BoardSpec("cpu1", "moesi")])
    template = timed_run_from_trace(system,
                                    ping_pong(rounds=5, processors=2))
    return Runner(system, template.processors)


class TestRunnerShim:
    def test_run_works_and_warns_once(self):
        runner = _timed_runner()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = runner.run()
        assert report.accesses == 10
        (warning,) = _deprecations(caught)
        message = str(warning.message)
        assert "Runner.run" in message and "repro.api" in message

    def test_second_use_is_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _timed_runner().run()
            _timed_runner().run()
        assert len(_deprecations(caught)) == 1

    def test_timed_run_does_not_warn(self):
        from repro.system.runner import timed_run_from_trace

        system = System([BoardSpec("cpu0", "moesi"),
                         BoardSpec("cpu1", "moesi")])
        run = timed_run_from_trace(system,
                                   ping_pong(rounds=5, processors=2))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run.run()
        assert _deprecations(caught) == []


class TestCampaignShim:
    def test_run_campaign_works_and_warns_once(self, tmp_path):
        from repro.fuzz.campaign import CampaignConfig, run_campaign

        config = CampaignConfig(seeds=3)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = run_campaign(config, out_dir=tmp_path)
            run_campaign(config, out_dir=tmp_path)
        assert report.ok and report.seeds_run == 3
        (warning,) = _deprecations(caught)
        assert "run_campaign" in str(warning.message)
        assert "repro.api.fuzz_campaign" in str(warning.message)

    def test_facade_path_is_silent(self, tmp_path):
        from repro import Session

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = Session().fuzz_campaign(seeds=3, out_dir=tmp_path)
        assert result.ok
        assert _deprecations(caught) == []

"""The discrete-event engine."""

import pytest

from repro.system.des import EventQueue, Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, lambda: None)
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_ties_broken_by_insertion(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(1.0, lambda: None)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None


class TestSimulator:
    def test_runs_in_order_and_advances_clock(self):
        sim = Simulator()
        out = []
        sim.at(5.0, lambda: out.append(("b", sim.now)))
        sim.at(1.0, lambda: out.append(("a", sim.now)))
        sim.run()
        assert out == [("a", 1.0), ("b", 5.0)]
        assert sim.now == 5.0

    def test_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.after(10.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0]

    def test_callbacks_may_schedule_more(self):
        sim = Simulator()
        hits = []

        def tick():
            hits.append(sim.now)
            if len(hits) < 3:
                sim.after(10.0, tick)

        sim.after(0.0, tick)
        sim.run()
        assert hits == [0.0, 10.0, 20.0]

    def test_until_bound(self):
        sim = Simulator()
        hits = []

        def tick():
            hits.append(sim.now)
            sim.after(10.0, tick)

        sim.after(0.0, tick)
        sim.run(until=25.0)
        assert hits == [0.0, 10.0, 20.0]
        assert sim.now == 25.0
        assert sim.pending == 1  # the 30.0 event remains queued

    def test_max_events_bound(self):
        sim = Simulator()
        hits = []

        def tick():
            hits.append(sim.now)
            sim.after(1.0, tick)

        sim.after(0.0, tick)
        sim.run(max_events=5)
        assert len(hits) == 5

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Simulator().after(-1.0, lambda: None)

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 2

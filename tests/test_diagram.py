"""Protocol state-diagram generation."""

import pytest

from repro.analysis.diagram import (
    build_transition_graph,
    reachable_states,
    render_adjacency,
    to_dot,
)
from repro.core.states import LineState
from repro.protocols.registry import make_protocol


class TestGraphStructure:
    def test_moesi_has_all_five_nodes(self):
        graph = build_transition_graph(make_protocol("moesi"))
        assert set(graph.nodes) == set("MOESI")

    def test_berkeley_has_no_e(self):
        graph = build_transition_graph(make_protocol("berkeley"))
        assert "E" not in graph.nodes
        assert set(graph.nodes) == set("MOSI")

    def test_write_through_two_states(self):
        graph = build_transition_graph(make_protocol("write-through"))
        assert set(graph.nodes) == {"S", "I"}

    def test_conditional_contributes_both_branches(self):
        """I --read--> {S, E} via CH:S/E."""
        graph = build_transition_graph(make_protocol("moesi"))
        targets = {t for _, t in graph.out_edges("I")}
        assert {"S", "E", "M"} <= targets

    def test_edge_labels_carry_notation(self):
        graph = build_transition_graph(make_protocol("moesi"))
        labels = {d["label"] for *_, d in graph.edges(data=True)}
        assert any("CA,IM,BC,W" in label for label in labels)
        assert any(label.startswith("col5") for label in labels)


class TestReachability:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("moesi", set("MOESI")),
            ("berkeley", set("MOSI")),
            ("dragon", set("MOESI")),
            ("illinois", set("MESI")),
            ("write-once", set("MESI")),
            ("firefly", set("MESI")),
            ("write-through", {"S", "I"}),
        ],
    )
    def test_every_protocol_state_reachable_from_invalid(self, name, expected):
        """No dead states: the protocol actually uses all it declares."""
        assert reachable_states(make_protocol(name)) == expected

    def test_reachability_from_other_start(self):
        states = reachable_states(
            make_protocol("moesi"), start=LineState.MODIFIED
        )
        assert states == set("MOESI")


class TestRendering:
    def test_adjacency_text(self):
        text = render_adjacency(make_protocol("berkeley"))
        assert "Berkeley" in text
        assert "I -> S" in text and "I -> M" in text

    def test_dot_output_wellformed(self):
        dot = to_dot(make_protocol("moesi"))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "M -> O" in dot

    def test_dot_distinguishes_local_and_bus(self):
        dot = to_dot(make_protocol("moesi"))
        assert "style=solid" in dot and "style=dashed" in dot

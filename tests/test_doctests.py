"""Run the library's embedded doctests (usage examples in docstrings)."""

import doctest

import pytest

import repro.analysis.paper_data
import repro.analysis.report
import repro.core.states
import repro.ext.linecross
import repro.system.des

MODULES = [
    repro.core.states,
    repro.analysis.paper_data,
    repro.analysis.report,
    repro.ext.linecross,
    repro.system.des,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests"

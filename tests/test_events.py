"""Tests for local/bus event taxonomy (table notes 1-10)."""

import pytest

from repro.core.events import (
    ALL_BUS_EVENTS,
    ALL_LOCAL_EVENTS,
    BusEvent,
    LocalEvent,
)
from repro.core.signals import MasterSignals


class TestLocalEvents:
    def test_note_numbers(self):
        assert [e.note for e in ALL_LOCAL_EVENTS] == [1, 2, 3, 4]

    def test_order_matches_paper_columns(self):
        assert ALL_LOCAL_EVENTS == (
            LocalEvent.READ,
            LocalEvent.WRITE,
            LocalEvent.PASS,
            LocalEvent.FLUSH,
        )


class TestBusEventClassification:
    """Columns 5-10 are fully determined by (CA, IM, BC)."""

    @pytest.mark.parametrize(
        "ca,im,bc,expected",
        [
            (True, False, False, BusEvent.CACHE_READ),
            (True, True, False, BusEvent.CACHE_READ_FOR_MODIFY),
            (False, False, False, BusEvent.UNCACHED_READ),
            (True, True, True, BusEvent.CACHE_BROADCAST_WRITE),
            (False, True, False, BusEvent.UNCACHED_WRITE),
            (False, True, True, BusEvent.UNCACHED_BROADCAST_WRITE),
        ],
    )
    def test_from_signals(self, ca, im, bc, expected):
        signals = MasterSignals(ca=ca, im=im, bc=bc)
        assert BusEvent.from_signals(signals) is expected

    def test_note_numbers(self):
        assert [e.note for e in ALL_BUS_EVENTS] == [5, 6, 7, 8, 9, 10]

    def test_roundtrip_signals(self):
        for event in ALL_BUS_EVENTS:
            assert BusEvent.from_signals(event.master_signals) is event

    @pytest.mark.parametrize("ca", [True, False])
    def test_broadcast_push_classifies_as_non_modifying(self, ca):
        """BC with ~IM (a broadcast write-back) looks like column 5/7."""
        signals = MasterSignals(ca=ca, im=False, bc=True)
        expected = BusEvent.CACHE_READ if ca else BusEvent.UNCACHED_READ
        assert BusEvent.from_signals(signals) is expected

    @pytest.mark.parametrize(
        "event,is_read",
        [
            (BusEvent.CACHE_READ, True),
            (BusEvent.CACHE_READ_FOR_MODIFY, False),
            (BusEvent.UNCACHED_READ, True),
            (BusEvent.CACHE_BROADCAST_WRITE, False),
        ],
    )
    def test_read_write_predicates(self, event, is_read):
        assert event.is_read is is_read
        assert event.is_write is not is_read

    @pytest.mark.parametrize(
        "event,expected",
        [
            (BusEvent.CACHE_READ, True),
            (BusEvent.UNCACHED_READ, False),
            (BusEvent.UNCACHED_WRITE, False),
            (BusEvent.CACHE_BROADCAST_WRITE, True),
        ],
    )
    def test_by_cache_master(self, event, expected):
        assert event.by_cache_master is expected

    def test_notation_matches_paper_headings(self):
        assert BusEvent.CACHE_READ.notation() == "CA,~IM,~BC"
        assert BusEvent.UNCACHED_BROADCAST_WRITE.notation() == "~CA,IM,BC"

    def test_broadcast_predicate(self):
        assert BusEvent.CACHE_BROADCAST_WRITE.is_broadcast
        assert not BusEvent.UNCACHED_WRITE.is_broadcast

"""The model checker itself: exhaustiveness, dedup, violation reporting."""

import pytest

from repro.verify.explorer import (
    Explorer,
    FullClassProtocol,
    ScriptedChooser,
    ScriptedPolicy,
    explore,
)


class TestScriptedChooser:
    def test_default_picks_zero_and_logs_arity(self):
        chooser = ScriptedChooser()
        chooser.begin(())
        assert chooser.pick(3) == 0
        assert chooser.pick(2) == 0
        assert chooser.arities == [3, 2]

    def test_script_replayed(self):
        chooser = ScriptedChooser()
        chooser.begin((2, 1))
        assert chooser.pick(3) == 2
        assert chooser.pick(2) == 1

    def test_beyond_script_defaults_to_zero(self):
        chooser = ScriptedChooser()
        chooser.begin((1,))
        chooser.pick(2)
        assert chooser.pick(5) == 0

    def test_out_of_range_rejected(self):
        chooser = ScriptedChooser()
        chooser.begin((7,))
        with pytest.raises(IndexError):
            chooser.pick(2)


class TestFullClassProtocol:
    def test_cells_are_closure_sized(self):
        from repro.core.events import LocalEvent
        from repro.core.states import LineState
        from repro.core.transitions import local_choices

        protocol = FullClassProtocol(ScriptedPolicy(ScriptedChooser()))
        closure = protocol.local_cell(LineState.SHAREABLE, LocalEvent.WRITE)
        literal = local_choices(LineState.SHAREABLE, LocalEvent.WRITE)
        assert len(closure) > len(literal)

    def test_cells_deterministic_order(self):
        protocol = FullClassProtocol(ScriptedPolicy(ScriptedChooser()))
        from repro.core.events import BusEvent
        from repro.core.states import LineState

        a = protocol.snoop_cell(LineState.SHAREABLE, BusEvent.CACHE_READ)
        b = protocol.snoop_cell(LineState.SHAREABLE, BusEvent.CACHE_READ)
        assert a == b


class TestExploration:
    def test_homogeneous_moesi_consistent_and_exhaustive(self):
        result = explore(["moesi", "moesi"])
        assert result.consistent and result.complete
        assert result.states_explored > 5

    def test_state_dedup_keeps_space_small(self):
        """Two caches on one line: well under a hundred canonical states."""
        result = explore(["moesi-scripted", "moesi-scripted"])
        assert result.states_explored < 100

    def test_max_states_bound_reported(self):
        explorer = Explorer(["moesi", "moesi"], max_states=3)
        result = explorer.run()
        assert not result.complete

    def test_violation_path_is_reproducible_narrative(self):
        result = explore(["write-once", "moesi"])
        assert result.violations
        text = str(result.violations[0])
        assert "->" in text or "." in text  # unit.event steps

    def test_label_defaults_to_spec_names(self):
        result = explore(["berkeley", "dragon"])
        assert result.label == "berkeley+dragon"

    def test_summary_format(self):
        result = explore(["moesi", "moesi"])
        assert "consistent" in result.summary()
        assert "exhaustive" in result.summary()

    def test_callable_spec(self):
        from repro.protocols.moesi import MoesiProtocol

        result = explore(
            [lambda chooser: MoesiProtocol(ScriptedPolicy(chooser)), "moesi"]
        )
        assert result.consistent

    def test_downgrades_explored_for_members(self):
        """Relaxations 9/10 (spontaneous M->O, E->S) appear as steps."""
        explorer = Explorer(["moesi", "moesi"], include_downgrades=True)
        result = explorer.run()
        no_downgrades = Explorer(
            ["moesi", "moesi"], include_downgrades=False
        ).run()
        assert result.transitions_taken > no_downgrades.transitions_taken

    def test_three_unit_exploration_terminates(self):
        result = explore(["moesi", "berkeley", "non-caching"])
        assert result.complete and result.consistent


class TestMultiLineExploration:
    """Two line addresses aliasing one cache frame: evictions and
    write-backs become part of the explored space."""

    def test_two_lines_consistent_moesi(self):
        result = Explorer(["moesi", "moesi"], lines=2).run()
        assert result.consistent and result.complete
        # Far more states than the single-line space (18).
        assert result.states_explored > 100

    def test_two_lines_mixed_members(self):
        result = Explorer(["berkeley", "dragon"], lines=2).run()
        assert result.consistent and result.complete

    def test_two_lines_foreign_homogeneous(self):
        result = Explorer(["illinois", "illinois"], lines=2).run()
        assert result.consistent and result.complete

    def test_eviction_mutant_caught_with_two_lines(self):
        """DropOwnershipMutant silently discards M lines on eviction --
        only multi-line exploration can trigger capacity eviction."""
        from repro.verify.mutations import DropOwnershipMutant

        result = Explorer(
            [lambda ch: DropOwnershipMutant(), "moesi"], lines=2
        ).run()
        assert not result.consistent

    def test_step_labels_carry_line(self):
        from repro.verify.explorer import _Step

        step = _Step("u0", "write", (), line=1)
        assert "[L1]" in str(step)

    def test_lines_must_be_positive(self):
        with pytest.raises(ValueError):
            Explorer(["moesi"], lines=0)

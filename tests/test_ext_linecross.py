"""Line crossers (section 5.1): per-line splitting of wide accesses."""

import pytest

from repro.ext.linecross import LineCrossingPort, split_reference


class TestSplitReference:
    def test_within_one_line(self):
        pieces = split_reference(4, 8, 32)
        assert len(pieces) == 1
        assert pieces[0].line_address == 0 and pieces[0].size == 8

    def test_crossing_two_lines(self):
        pieces = split_reference(30, 8, 32)
        assert [(p.line_address, p.size) for p in pieces] == [(0, 2), (1, 6)]

    def test_spanning_three_lines(self):
        pieces = split_reference(16, 80, 32)
        assert [(p.line_address, p.size) for p in pieces] == [
            (0, 16),
            (1, 32),
            (2, 32),
        ]

    def test_exact_line_boundary_no_split(self):
        pieces = split_reference(32, 32, 32)
        assert len(pieces) == 1 and pieces[0].line_address == 1

    def test_sizes_sum(self):
        pieces = split_reference(13, 100, 32)
        assert sum(p.size for p in pieces) == 100

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_reference(0, 0, 32)
        with pytest.raises(ValueError):
            split_reference(-1, 4, 32)


class TestLineCrossingPort:
    def test_crossing_write_touches_both_lines(self, mini):
        rig = mini("moesi", "moesi")
        port = LineCrossingPort(rig[0])
        port.write(30, 5, size=8)  # spans lines 0 and 1
        assert rig[0].state_of(0).letter == "M"
        assert rig[0].state_of(1).letter == "M"
        assert port.split_accesses == 1

    def test_crossing_read_returns_piece_per_line(self, mini):
        rig = mini("moesi", "moesi")
        port = LineCrossingPort(rig[0])
        rig[1].write(0, 1)
        rig[1].write(32, 2)
        values = port.read(30, size=8)
        assert values == [1, 2]

    def test_each_piece_is_separate_bus_transaction(self, mini):
        """The paper's requirement: one transaction per line involved."""
        rig = mini("moesi", "moesi")
        port = LineCrossingPort(rig[0])
        before = rig[0].stats.bus_transactions
        port.read(30, size=8)  # two read misses
        assert rig[0].stats.bus_transactions == before + 2

    def test_non_crossing_not_counted(self, mini):
        rig = mini("moesi", "moesi")
        port = LineCrossingPort(rig[0])
        port.read(0, size=4)
        assert port.split_accesses == 0

    def test_peer_coherence_across_split_write(self, mini):
        rig = mini("moesi", "moesi")
        rig[1].read(0)
        rig[1].read(32)
        port = LineCrossingPort(rig[0])
        port.write(30, 9, size=8)
        assert rig[1].read(0) == 9
        assert rig[1].read(32) == 9

"""The line-size mismatch demonstrator (section 5.1)."""

from repro.ext.linesize import (
    demonstrate_mismatch,
    demonstrate_uniform_ok,
)


class TestMismatchDemo:
    def test_mixed_sizes_produce_stale_read(self):
        demo = demonstrate_mismatch()
        assert demo.stale_read
        assert demo.expected_tokens != demo.observed_tokens

    def test_narrative_tells_the_story(self):
        demo = demonstrate_mismatch()
        text = "\n".join(demo.narrative)
        assert "A(64B)" in text and "B(32B)" in text

    def test_owned_half_is_merged_but_other_half_stale(self):
        """The charitable merge supplies B's half; the failure is the
        half no snooper could cover."""
        demo = demonstrate_mismatch()
        assert demo.observed_tokens[1] == demo.expected_tokens[1]
        assert demo.observed_tokens[0] != demo.expected_tokens[0]

    def test_summary_flags_staleness(self):
        assert "STALE READ" in demonstrate_mismatch().summary()


class TestUniformControl:
    def test_uniform_sizes_consistent(self):
        demo = demonstrate_uniform_ok()
        assert not demo.stale_read

    def test_summary_reports_consistent(self):
        assert "consistent" in demonstrate_uniform_ok().summary()

"""Per-page protocol selection (section 3.4, Clipper-style)."""

import pytest

from repro.core.validation import check_membership
from repro.ext.perpage import PageClass, PageMap, PerPageProtocol
from repro.system.system import BoardSpec, System
from repro.verify.explorer import explore


def _protocol(**kwargs):
    defaults = dict(page_size=128, line_size=32)
    defaults.update(kwargs)
    return PerPageProtocol(PageMap(**defaults))


class TestPageMap:
    def test_classify_by_page(self):
        page_map = PageMap(
            page_size=128,
            line_size=32,
            assignments={0: PageClass.WRITE_THROUGH, 1: PageClass.UNCACHEABLE},
        )
        assert page_map.classify(0) == PageClass.WRITE_THROUGH   # line 0
        assert page_map.classify(3) == PageClass.WRITE_THROUGH   # line 3, page 0
        assert page_map.classify(4) == PageClass.UNCACHEABLE     # page 1
        assert page_map.classify(8) == PageClass.COPY_BACK       # default

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            PageMap(default="weird")
        with pytest.raises(ValueError):
            PageMap(assignments={0: "weird"})


class TestMembership:
    def test_full_member(self):
        report = check_membership(_protocol())
        assert report.is_full_member, report.summary()

    def test_model_checks_clean(self):
        result = explore(
            [
                lambda ch: _protocol(default=PageClass.WRITE_THROUGH),
                "moesi",
            ],
            label="perpage-wt+moesi",
        )
        assert result.consistent


class TestBehaviourByPage:
    def _system(self, assignments):
        protocol = PerPageProtocol(
            PageMap(page_size=128, line_size=32, assignments=assignments)
        )
        return System(
            [BoardSpec("cpu0", protocol), BoardSpec("cpu1", "moesi")]
        )

    def test_copy_back_page_takes_ownership(self):
        system = self._system({})
        system.write("cpu0", 0)
        assert system.controllers["cpu0"].state_of(0).letter == "M"

    def test_write_through_page_writes_to_memory(self):
        system = self._system({0: PageClass.WRITE_THROUGH})
        system.read("cpu0", 0)
        token = system.write("cpu0", 0)
        assert system.memory.peek(0) == token
        assert system.controllers["cpu0"].state_of(0).letter == "S"

    def test_uncacheable_page_retains_nothing(self):
        system = self._system({0: PageClass.UNCACHEABLE})
        system.read("cpu0", 0)
        assert system.controllers["cpu0"].state_of(0).letter == "I"
        token = system.write("cpu0", 0)
        assert system.memory.peek(0) == token

    def test_pages_independent(self):
        system = self._system({1: PageClass.UNCACHEABLE})
        system.write("cpu0", 0)      # page 0: copy-back
        system.write("cpu0", 128)    # page 1: uncacheable
        cpu0 = system.controllers["cpu0"]
        assert cpu0.state_of(0).letter == "M"
        assert cpu0.state_of(4).letter == "I"

    def test_mixed_pages_stay_coherent(self):
        system = self._system({0: PageClass.WRITE_THROUGH,
                               1: PageClass.UNCACHEABLE})
        for address in (0, 128, 256):
            system.write("cpu0", address)
            system.read("cpu1", address)
            system.write("cpu1", address)
            system.read("cpu0", address)
        assert not system.check_coherence()

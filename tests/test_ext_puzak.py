"""The Puzak-style recency refinement (section 5.2, experiment E4)."""

import pytest

from repro.core.events import BusEvent
from repro.core.protocol import SnoopContext
from repro.core.states import LineState
from repro.core.transitions import snoop_choices
from repro.core.validation import check_membership
from repro.ext.puzak import (
    RecencyAwarePolicy,
    make_puzak_protocol,
    puzak_comparison,
)
from repro.verify.explorer import explore

S = LineState.SHAREABLE
COL8 = BusEvent.CACHE_BROADCAST_WRITE
CHOICES = snoop_choices(S, COL8)


class TestPolicy:
    def test_recent_line_updated(self):
        policy = RecencyAwarePolicy(threshold=0.5)
        ctx = SnoopContext(recency=0.0)  # MRU
        assert policy.choose_snoop(S, COL8, CHOICES, ctx).retains_copy

    def test_stale_line_discarded(self):
        policy = RecencyAwarePolicy(threshold=0.5)
        ctx = SnoopContext(recency=1.0)  # LRU, about to be replaced
        assert not policy.choose_snoop(S, COL8, CHOICES, ctx).retains_copy

    def test_threshold_boundary_inclusive(self):
        policy = RecencyAwarePolicy(threshold=0.5)
        ctx = SnoopContext(recency=0.5)
        assert policy.choose_snoop(S, COL8, CHOICES, ctx).retains_copy

    def test_no_recency_falls_back_to_preferred(self):
        policy = RecencyAwarePolicy()
        chosen = policy.choose_snoop(S, COL8, CHOICES, SnoopContext())
        assert chosen is CHOICES[0]

    def test_single_choice_cells_unaffected(self):
        single = snoop_choices(S, BusEvent.CACHE_READ)
        policy = RecencyAwarePolicy()
        ctx = SnoopContext(recency=1.0)
        assert policy.choose_snoop(S, BusEvent.CACHE_READ, single, ctx) is single[0]

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            RecencyAwarePolicy(threshold=1.5)


class TestProtocol:
    def test_is_class_member(self):
        """The refinement only picks among permitted actions."""
        report = check_membership(make_puzak_protocol())
        assert report.is_full_member, report.summary()

    def test_model_checks_clean_against_class(self):
        result = explore(
            [lambda ch: make_puzak_protocol(), "moesi"],
            label="puzak+moesi",
        )
        assert result.consistent and result.complete

    def test_name_carries_threshold(self):
        assert "0.25" in make_puzak_protocol(0.25).name


class TestTwoWayBehaviour:
    def test_mru_updated_lru_dropped_in_two_way_set(self, mini):
        """The paper's example: in a 2-way set, update the MRU element,
        discard the LRU element."""
        from repro.bus.futurebus import Futurebus
        from repro.cache.cache import SetAssociativeCache
        from repro.cache.controller import CacheController
        from repro.memory.main_memory import MainMemory
        from repro.protocols.registry import make_protocol

        memory = MainMemory()
        bus = Futurebus(memory)
        snooper = CacheController(
            "snooper",
            make_puzak_protocol(0.5),
            SetAssociativeCache(num_sets=1, associativity=2),
            bus,
        )
        writer = CacheController(
            "writer",
            make_protocol("moesi-update"),
            SetAssociativeCache(num_sets=2, associativity=2),
            bus,
        )
        # The snooper holds lines 0 and 1 in its single set; line 1 is MRU.
        snooper.read(0)
        snooper.read(32)
        writer.read(0)
        writer.read(32)
        # Writer broadcasts to both lines; only the snooper's MRU line (1)
        # should survive as an updated copy.
        writer.write(32, 1)   # MRU at snooper -> updated
        writer.write(0, 2)    # LRU at snooper -> discarded
        assert snooper.state_of(1).letter == "S"
        assert snooper.value_of(1) == 1
        assert snooper.state_of(0).letter == "I"


class TestComparison:
    def test_rows_cover_three_policies(self):
        rows = puzak_comparison(references=600)
        systems = [r["system"] for r in rows]
        assert systems[0] == "always-update"
        assert systems[1] == "always-invalidate"
        assert any("puzak" in s for s in systems)

    def test_puzak_between_extremes_on_updates(self):
        rows = puzak_comparison(references=1200)
        by_name = {r["system"]: r for r in rows}
        puzak_row = next(v for k, v in by_name.items() if "puzak" in k)
        assert (
            by_name["always-invalidate"]["updates"]
            <= puzak_row["updates"]
            <= by_name["always-update"]["updates"]
        )

"""Consistency commands (section 6): sync and flush across the bus."""

import pytest

from repro.ext.sync import ConsistencyCommander
from repro.system.system import BoardSpec, System


def _commander(system: System) -> ConsistencyCommander:
    return ConsistencyCommander(system.bus)


class TestSyncLine:
    def test_memory_updated_copies_kept(self):
        system = System.homogeneous("moesi", 2)
        token = system.write("cpu0", 0)        # owner M, memory stale
        assert system.memory.peek(0) != token
        value = _commander(system).sync_line(0)
        assert value == token
        assert system.memory.peek(0) == token
        # The owner retains its (still-owned) copy; reads still hit.
        assert system.controllers["cpu0"].state_of(0).valid
        assert system.read("cpu0", 0) == token
        assert not system.check_coherence()

    def test_noop_when_memory_already_owner(self):
        system = System.homogeneous("moesi", 2)
        system.read("cpu0", 0)                 # clean copy, memory current
        commander = _commander(system)
        commander.sync_line(0)
        assert commander.stats.transactions == 1  # just the probe read

    def test_shared_dirty_line_synced(self):
        system = System.homogeneous("berkeley", 3)
        token = system.write("cpu0", 0)
        system.read("cpu1", 0)                 # O + S, memory stale
        system.read("cpu2", 0)
        _commander(system).sync_line(0)
        assert system.memory.peek(0) == token
        for unit in ("cpu0", "cpu1", "cpu2"):
            assert system.read(unit, 0) == token
        assert not system.check_coherence()

    @pytest.mark.parametrize(
        "protocol", ["moesi", "berkeley", "dragon", "moesi-invalidate"]
    )
    def test_across_protocols(self, protocol):
        system = System.homogeneous(protocol, 2)
        token = system.write("cpu0", 0)
        _commander(system).sync_line(0)
        assert system.memory.peek(0) == token
        assert not system.check_coherence()


class TestFlushLine:
    def test_memory_updated_copies_purged(self):
        system = System.homogeneous("moesi", 3)
        token = system.write("cpu0", 0)
        system.read("cpu1", 0)
        value = _commander(system).flush_line(0)
        assert value == token
        assert system.memory.peek(0) == token
        for unit in ("cpu0", "cpu1", "cpu2"):
            assert not system.controllers[unit].state_of(0).valid
        assert not system.check_coherence()

    def test_next_read_comes_from_memory(self):
        system = System.homogeneous("moesi", 2)
        token = system.write("cpu0", 0)
        _commander(system).flush_line(0)
        reads_before = system.memory.stats.reads
        assert system.read("cpu1", 0) == token
        assert system.memory.stats.reads == reads_before + 1

    def test_flush_clean_line(self):
        system = System.homogeneous("moesi", 2)
        system.read("cpu0", 0)
        _commander(system).flush_line(0)
        assert not system.controllers["cpu0"].state_of(0).valid
        assert not system.check_coherence()

    def test_mixed_system_flush(self):
        system = System(
            [
                BoardSpec("a", "moesi"),
                BoardSpec("b", "dragon"),
                BoardSpec("c", "write-through"),
            ]
        )
        token = system.write("a", 0)
        system.read("b", 0)
        system.read("c", 0)
        _commander(system).flush_line(0)
        assert system.memory.peek(0) == token
        assert all(
            not system.controllers[u].state_of(0).valid for u in "abc"
        )
        assert not system.check_coherence()


class TestRanges:
    def test_sync_range(self):
        system = System.homogeneous("moesi", 2)
        tokens = [system.write("cpu0", line * 32) for line in range(4)]
        commander = _commander(system)
        assert commander.sync_range(0, 3) == 4
        for line, token in enumerate(tokens):
            assert system.memory.peek(line) == token
        assert commander.stats.syncs == 4

    def test_flush_range_dma_scenario(self):
        """The I/O story: flush before handing a buffer to a device."""
        system = System(
            [BoardSpec("cpu", "moesi"), BoardSpec("dma", "non-caching")]
        )
        tokens = [system.write("cpu", line * 32) for line in range(3)]
        _commander(system).flush_range(0, 2)
        # The DMA engine now sees every line directly from memory.
        for line, token in enumerate(tokens):
            assert system.read("dma", line * 32) == token
        assert not system.check_coherence()

"""The Futurebus transaction engine, driven by stub agents.

These tests pin the engine's routing rules independently of the cache
controller: who supplies reads, who absorbs writes, when memory updates,
how BS aborts retry, and how errors are surfaced."""

import pytest

from repro.bus.futurebus import BusAgent, BusLivelockError, Futurebus
from repro.bus.transaction import Transaction
from repro.core.actions import BusOp
from repro.core.signals import MasterSignals, SnoopResponse
from repro.memory.main_memory import MainMemory


class StubAgent(BusAgent):
    """Scriptable snooper: responds with a fixed SnoopResponse."""

    def __init__(self, unit_id, response=SnoopResponse.NONE, data=99):
        self.unit_id = unit_id
        self.response = response
        self.data = data
        self.captured = []
        self.updated = []
        self.finalized = []
        self.aborted = []

    def snoop(self, txn):
        return self.response

    def supply_data(self, txn):
        return self.data

    def capture_write(self, txn):
        self.captured.append(txn.value)

    def connect_update(self, txn):
        self.updated.append(txn.value)

    def finalize(self, txn, aggregate):
        self.finalized.append((txn.serial, aggregate))

    def transaction_aborted(self, txn):
        self.aborted.append(txn.serial)


class PushingAgent(StubAgent):
    """Asserts BS once, pushes, then goes quiet -- like a dirty cache."""

    def __init__(self, unit_id, push_value):
        super().__init__(unit_id, SnoopResponse(bs=True), push_value)
        self.pushed = False

    def snoop(self, txn):
        if self.pushed:
            return SnoopResponse(ch=True)
        return SnoopResponse(bs=True)

    def abort_push(self, txn, bus):
        bus.execute(
            self.unit_id, txn.address, MasterSignals(ca=True), BusOp.WRITE,
            self.data,
        )
        self.pushed = True


@pytest.fixture
def rig():
    memory = MainMemory()
    bus = Futurebus(memory)
    return bus, memory


class TestReads:
    def test_memory_supplies_by_default(self, rig):
        bus, memory = rig
        memory.poke(0, 42)
        bus.attach(StubAgent("a"))
        result = bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)
        assert result.value == 42 and result.supplier == "memory"

    def test_di_preempts_memory(self, rig):
        bus, memory = rig
        memory.poke(0, 42)
        owner = StubAgent("owner", SnoopResponse(di=True), data=7)
        bus.attach(owner)
        result = bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)
        assert result.value == 7 and result.supplier == "owner"
        assert memory.stats.reads == 0

    def test_master_does_not_snoop_itself(self, rig):
        bus, _ = rig
        agent = StubAgent("m", SnoopResponse(di=True))
        bus.attach(agent)
        result = bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)
        assert result.supplier == "memory"

    def test_ch_aggregated(self, rig):
        bus, _ = rig
        bus.attach(StubAgent("a", SnoopResponse(ch=True)))
        bus.attach(StubAgent("b"))
        result = bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)
        assert result.shared


class TestWrites:
    def test_plain_write_updates_memory(self, rig):
        bus, memory = rig
        bus.attach(StubAgent("a"))
        bus.execute("m", 0, MasterSignals(im=True), BusOp.WRITE, 5)
        assert memory.peek(0) == 5

    def test_owner_captures_non_broadcast_write(self, rig):
        """DI on a write: the owner absorbs it; memory must stay stale."""
        bus, memory = rig
        owner = StubAgent("owner", SnoopResponse(di=True))
        bus.attach(owner)
        bus.execute("m", 0, MasterSignals(im=True), BusOp.WRITE, 5)
        assert owner.captured == [5]
        assert memory.stats.writes == 0

    def test_broadcast_write_updates_memory_and_connectors(self, rig):
        bus, memory = rig
        a = StubAgent("a", SnoopResponse(sl=True, ch=True))
        b = StubAgent("b")
        bus.attach(a)
        bus.attach(b)
        result = bus.execute(
            "m", 0, MasterSignals(ca=True, im=True, bc=True), BusOp.WRITE, 5
        )
        assert memory.peek(0) == 5
        assert a.updated == [5] and b.updated == []
        assert result.connectors == ("a",)

    def test_di_on_broadcast_is_an_error(self, rig):
        bus, _ = rig
        bus.attach(StubAgent("a", SnoopResponse(di=True)))
        with pytest.raises(RuntimeError, match="DI asserted on broadcast"):
            bus.execute(
                "m", 0, MasterSignals(ca=True, im=True, bc=True),
                BusOp.WRITE, 5,
            )

    def test_write_without_value_rejected(self, rig):
        bus, _ = rig
        with pytest.raises(ValueError, match="write without data"):
            bus.execute("m", 0, MasterSignals(im=True), BusOp.WRITE)

    def test_multiple_di_detected(self, rig):
        """Two intervenient responders = broken single-owner invariant."""
        bus, _ = rig
        bus.attach(StubAgent("a", SnoopResponse(di=True)))
        bus.attach(StubAgent("b", SnoopResponse(di=True)))
        with pytest.raises(RuntimeError, match="multiple intervenient"):
            bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)


class TestAddressOnly:
    def test_no_data_movement(self, rig):
        bus, memory = rig
        agent = StubAgent("a")
        bus.attach(agent)
        result = bus.execute(
            "m", 0, MasterSignals(ca=True, im=True), BusOp.NONE
        )
        assert memory.stats.writes == 0 and memory.stats.reads == 0
        assert result.value is None
        assert agent.finalized  # still snooped and finalized


class TestAbortRetry:
    def test_bs_causes_push_then_retry(self, rig):
        bus, memory = rig
        pusher = PushingAgent("dirty", push_value=9)
        bus.attach(pusher)
        result = bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)
        assert result.retries == 1
        assert memory.peek(0) == 9      # push reached memory first
        assert result.value == 9        # retry read the fresh value
        assert result.supplier == "memory"

    def test_non_pushers_notified_of_abort(self, rig):
        bus, _ = rig
        pusher = PushingAgent("dirty", push_value=9)
        bystander = StubAgent("by")
        bus.attach(pusher)
        bus.attach(bystander)
        bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)
        assert bystander.aborted  # told about the aborted first attempt

    def test_livelock_detected(self, rig):
        bus, _ = rig

        class ForeverBusy(StubAgent):
            def snoop(self, txn):
                return SnoopResponse(bs=True)

            def abort_push(self, txn, bus):
                pass  # never makes progress

        bus.attach(ForeverBusy("stuck"))
        with pytest.raises(BusLivelockError):
            bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)


class TestBookkeeping:
    def test_duplicate_unit_rejected(self, rig):
        bus, _ = rig
        bus.attach(StubAgent("a"))
        with pytest.raises(ValueError, match="duplicate"):
            bus.attach(StubAgent("a"))

    def test_trace_records_transactions(self):
        memory = MainMemory()
        trace = []
        bus = Futurebus(memory, trace=trace)
        bus.execute("m", 0, MasterSignals(im=True), BusOp.WRITE, 1)
        assert len(trace) == 1
        txn, result = trace[0]
        assert isinstance(txn, Transaction) and txn.master == "m"

    def test_busy_time_accumulates(self, rig):
        bus, _ = rig
        bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)
        first = bus.busy_ns
        bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)
        assert bus.busy_ns > first

    def test_read_then_write_rejected_at_engine(self, rig):
        bus, _ = rig
        with pytest.raises(ValueError, match="two transactions"):
            bus.execute(
                "m", 0, MasterSignals(ca=True), BusOp.READ_THEN_WRITE
            )

    def test_serial_numbers_increase(self, rig):
        bus, _ = rig
        trace = []
        bus.trace = trace
        bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)
        bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)
        assert trace[1][0].serial > trace[0][0].serial

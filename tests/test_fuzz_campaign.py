"""Campaigns: oracle behaviour, reproducibility, shrinking, repro files.

Exercises the legacy ``run_campaign`` entry point on purpose (the facade
path is covered by test_api), so its deprecation warning is expected.
"""

import dataclasses
import json

import pytest

pytestmark = pytest.mark.filterwarnings(
    "ignore:repro.fuzz.campaign.run_campaign is deprecated"
)

from repro.fuzz import (
    CampaignConfig,
    INJECTABLE_BUGS,
    ScenarioConfig,
    load_repro,
    replay_file,
    run_campaign,
    run_scenario,
)
from repro.fuzz.scenario import FuzzEvent, Geometry, Scenario


def _bug_config(name, seeds=30):
    return CampaignConfig(
        seeds=seeds,
        scenario=dataclasses.replace(ScenarioConfig(), inject=name),
    )


class TestCleanCampaign:
    def test_short_clean_campaign_passes(self):
        report = run_campaign(CampaignConfig(seeds=40), workers=0)
        assert report.ok, report.summary_text()
        assert report.seeds_run == 40
        assert report.steps_run > 0
        assert report.transitions_checked > 0


class TestByteReproducibility:
    """The acceptance criterion: worker count must not leak into output."""

    def test_serial_and_parallel_summaries_identical(self, tmp_path):
        config = _bug_config("illinois-silent-im", seeds=12)
        serial = run_campaign(config, workers=0,
                              out_dir=tmp_path / "serial")
        parallel = run_campaign(config, workers=2,
                                out_dir=tmp_path / "parallel")
        assert serial.summary_text() == parallel.summary_text()
        assert serial.summary_json() == parallel.summary_json()

    def test_repro_files_byte_identical_across_worker_counts(self, tmp_path):
        config = _bug_config("moesi-drop-ownership", seeds=10)
        run_campaign(config, workers=0, out_dir=tmp_path / "a")
        run_campaign(config, workers=3, out_dir=tmp_path / "b")
        names_a = sorted(p.name for p in (tmp_path / "a").iterdir())
        names_b = sorted(p.name for p in (tmp_path / "b").iterdir())
        assert names_a == names_b and names_a
        for name in names_a:
            assert (tmp_path / "a" / name).read_bytes() == \
                (tmp_path / "b" / name).read_bytes()

    def test_rerun_is_deterministic(self):
        config = CampaignConfig(seeds=25)
        assert run_campaign(config).summary_text() == \
            run_campaign(config).summary_text()


@pytest.mark.parametrize("bug", sorted(INJECTABLE_BUGS))
class TestInjectedBugs:
    def test_caught_and_shrunk(self, bug, tmp_path):
        report = run_campaign(_bug_config(bug), workers=0,
                              out_dir=tmp_path)
        assert report.failures, f"bug:{bug} survived 30 seeds"
        for item in report.failures:
            assert item.shrunk_failure is not None
            assert len(item.scenario.events) <= 6
            assert item.repro_path is not None

    def test_repro_file_replays_to_failure(self, bug, tmp_path):
        report = run_campaign(_bug_config(bug, seeds=15), workers=0,
                              out_dir=tmp_path)
        assert report.failures
        path = report.failures[0].repro_path
        result = replay_file(path)
        assert result.failure is not None

    def test_repro_file_format(self, bug, tmp_path):
        report = run_campaign(_bug_config(bug, seeds=15), workers=0,
                              out_dir=tmp_path)
        path = report.failures[0].repro_path
        data = json.loads(open(path).read())
        assert data["format"] == "repro.fuzz/1"
        scenario, recorded, note = load_repro(path)
        assert recorded is not None
        assert "shrunk from fuzz seed" in note
        # The recorded failure is what a fresh run of the file produces.
        assert str(run_scenario(scenario).failure) == str(recorded)


class TestOracleAttribution:
    def test_differential_oracle_names_table_deviation(self):
        """A hand-built minimal bug scenario is attributed to the
        differential oracle with the deviating transition spelled out."""
        scenario = Scenario(
            seed=0,
            units=("bug:illinois-silent-im", "illinois"),
            geometry=Geometry(),
            events=(
                FuzzEvent(0, "read", 0),   # bug board caches the line (S/E)
                FuzzEvent(1, "read", 0),   # both now S
                FuzzEvent(1, "write", 0),  # IM: the bug keeps its S copy
            ),
        )
        result = run_scenario(scenario)
        assert result.failure is not None
        assert result.failure.oracle == "differential"
        assert "unreachable" in result.failure.detail
        assert "u0" in result.failure.detail

    def test_no_shrink_keeps_original_scenario(self, tmp_path):
        config = dataclasses.replace(_bug_config("illinois-silent-im",
                                                 seeds=10), shrink=False)
        report = run_campaign(config, workers=0)
        assert report.failures
        first = report.failures[0]
        # Unshrunk: the scenario is the generated one, full size.
        assert len(first.scenario.events) >= 6


class TestReplayErrors:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "other/9", "scenario": {}}))
        with pytest.raises(ValueError, match="not a repro.fuzz/1"):
            load_repro(path)


class TestShardedCampaign:
    """Range-partitioned campaigns: byte-identical to per-seed at any
    shard count, failures and repro files included."""

    def test_shard_ranges_partition_contiguously(self):
        from repro.fuzz.campaign import shard_ranges

        ranges = shard_ranges(100, 10, 3)
        assert ranges == [(100, 4), (104, 3), (107, 3)]
        covered = [
            seed for start, count in ranges
            for seed in range(start, start + count)
        ]
        assert covered == list(range(100, 110))
        assert shard_ranges(0, 3, 8) == [(0, 1), (1, 1), (2, 1)]
        assert shard_ranges(0, 0, 4) == []

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_clean_campaign_shard_invariant(self, shards):
        from repro.fuzz.campaign import _run_campaign, run_sharded_campaign

        config = CampaignConfig(seeds=24)
        base = _run_campaign(config, workers=0)
        got = run_sharded_campaign(config, shards=shards, workers=0)
        assert got.summary_json() == base.summary_json()
        assert got.summary_text() == base.summary_text()

    def test_failing_campaign_shard_invariant(self, tmp_path):
        from repro.fuzz.campaign import _run_campaign, run_sharded_campaign

        config = _bug_config("moesi-drop-ownership", seeds=16)
        base = _run_campaign(config, workers=0, out_dir=tmp_path / "seed")
        assert base.failures, "expected the injected bug to fire"
        got = run_sharded_campaign(
            config, shards=3, workers=0, out_dir=tmp_path / "shard"
        )
        assert got.summary_json() == base.summary_json()
        names = sorted(p.name for p in (tmp_path / "shard").iterdir())
        assert names == sorted(p.name for p in (tmp_path / "seed").iterdir())
        for name in names:
            assert (tmp_path / "shard" / name).read_bytes() == (
                tmp_path / "seed" / name
            ).read_bytes()

    def test_pooled_shards_match_serial(self):
        from repro.fuzz.campaign import run_sharded_campaign

        config = CampaignConfig(seeds=20)
        serial = run_sharded_campaign(config, shards=4, workers=0)
        pooled = run_sharded_campaign(config, shards=4, workers=2)
        assert pooled.summary_json() == serial.summary_json()

    def test_facade_passthrough(self):
        from repro.api import fuzz_campaign

        result = fuzz_campaign(seeds=8, shards=2)
        assert result.report.seeds_run == 8

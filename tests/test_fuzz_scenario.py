"""Scenario generation: determinism, serialization, spec resolution."""

import dataclasses

import pytest

from repro.core.protocol import Protocol
from repro.fuzz.scenario import (
    FOREIGN_SPECS,
    INJECTABLE_BUGS,
    Scenario,
    ScenarioConfig,
    generate_scenario,
    reference_query,
    resolve_spec,
)
from repro.verify.explorer import (
    ClassTransitionQuery,
    ProtocolTransitionQuery,
)


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        assert generate_scenario(123) == generate_scenario(123)

    def test_different_seeds_differ_somewhere(self):
        scenarios = {generate_scenario(seed) for seed in range(20)}
        assert len(scenarios) > 1

    def test_config_changes_scenario(self):
        base = generate_scenario(5)
        forced = generate_scenario(
            5, dataclasses.replace(ScenarioConfig(), inject="moesi-drop-ownership")
        )
        assert base != forced
        assert any(u.startswith("bug:") for u in forced.units)

    def test_event_counts_respect_bounds(self):
        config = ScenarioConfig(min_events=3, max_events=5)
        for seed in range(30):
            scenario = generate_scenario(seed, config)
            assert 3 <= len(scenario.events) <= 5

    def test_unit_counts_respect_bounds(self):
        config = ScenarioConfig(min_units=2, max_units=3)
        for seed in range(30):
            scenario = generate_scenario(seed, config)
            assert 2 <= len(scenario.units) <= 3


class TestMixDiscipline:
    def test_foreign_scenarios_are_homogeneous(self):
        """BS-adapted protocols never mix (the paper's E4 warning)."""
        for seed in range(200):
            scenario = generate_scenario(seed)
            bases = {u.split(":", 1)[0] for u in scenario.units}
            if bases & set(FOREIGN_SPECS):
                assert len(bases) == 1, scenario.units

    def test_injected_bug_rides_with_its_base(self):
        config = dataclasses.replace(
            ScenarioConfig(), inject="illinois-silent-im"
        )
        for seed in range(20):
            scenario = generate_scenario(seed, config)
            assert scenario.units.count("bug:illinois-silent-im") == 1
            assert set(scenario.units) <= {"bug:illinois-silent-im",
                                           "illinois"}


class TestSerialization:
    def test_scenario_json_round_trip(self):
        scenario = generate_scenario(77)
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_config_round_trip(self):
        config = dataclasses.replace(
            ScenarioConfig(), inject="moesi-drop-ownership", max_events=9
        )
        assert ScenarioConfig.from_dict(config.to_dict()) == config


class TestResolveSpec:
    @pytest.mark.parametrize("spec", ["moesi", "berkeley", "illinois",
                                      "full-class:7", "moesi-random:7"])
    def test_resolves_to_protocol(self, spec):
        assert isinstance(resolve_spec(spec), Protocol)

    def test_seeded_specs_reproduce_choices(self):
        """Two instances from the same spec string make identical dynamic
        choices -- the property replay depends on."""
        a, b = resolve_spec("full-class:42"), resolve_spec("full-class:42")
        from repro.core.events import LocalEvent
        from repro.core.states import LineState

        picks_a = [a.local_action(LineState.INVALID, LocalEvent.READ)
                   for _ in range(10)]
        picks_b = [b.local_action(LineState.INVALID, LocalEvent.READ)
                   for _ in range(10)]
        assert picks_a == picks_b

    def test_every_injectable_bug_resolves(self):
        for name in INJECTABLE_BUGS:
            assert isinstance(resolve_spec(f"bug:{name}"), Protocol)

    def test_unknown_bug_raises(self):
        with pytest.raises(ValueError, match="unknown injectable bug"):
            resolve_spec("bug:nope")


class TestReferenceQuery:
    def test_class_member_gets_class_query(self):
        assert isinstance(reference_query("moesi"), ClassTransitionQuery)

    def test_full_class_reference_is_unfiltered(self):
        query = reference_query("full-class:3")
        assert isinstance(query, ClassTransitionQuery)
        assert query.kind is None

    def test_foreign_gets_protocol_query(self):
        query = reference_query("illinois")
        assert isinstance(query, ProtocolTransitionQuery)

    def test_bug_checked_against_unmutated_base(self):
        """The whole point of differential testing: the buggy board is
        judged by the table of the protocol it claims to be."""
        query = reference_query("bug:illinois-silent-im")
        assert isinstance(query, ProtocolTransitionQuery)
        assert "bug" not in query.protocol.name.lower()

"""Delta-debugging: minimality, unit dropping, failure preservation."""

import pytest

from repro.fuzz.runner import run_scenario
from repro.fuzz.scenario import FuzzEvent, Geometry, Scenario
from repro.fuzz.shrink import _without_unit, shrink_scenario


def _bug_scenario(extra_events=()):
    """A failing Illinois-bug scenario with optional noise events."""
    core = (
        FuzzEvent(0, "read", 0),
        FuzzEvent(1, "read", 0),
        FuzzEvent(1, "write", 0),
    )
    return Scenario(
        seed=1,
        units=("bug:illinois-silent-im", "illinois", "illinois"),
        geometry=Geometry(lines=2),
        events=tuple(extra_events) + core,
    )


class TestShrinking:
    def test_rejects_passing_scenario(self):
        passing = Scenario(
            seed=0,
            units=("moesi", "moesi"),
            geometry=Geometry(),
            events=(FuzzEvent(0, "read", 0),),
        )
        with pytest.raises(ValueError, match="needs a failing scenario"):
            shrink_scenario(passing)

    def test_noise_events_removed(self):
        noise = (
            FuzzEvent(2, "read", 1),
            FuzzEvent(2, "write", 1),
            FuzzEvent(0, "read", 1),
            FuzzEvent(2, "read", 1),
            FuzzEvent(1, "read", 1),
        )
        scenario = _bug_scenario(noise)
        minimal, result = shrink_scenario(scenario)
        assert result.failure is not None
        assert len(minimal.events) <= 3

    def test_spectator_unit_dropped(self):
        minimal, _ = shrink_scenario(_bug_scenario())
        # u2 never acts; the unit pass must drop it.
        assert len(minimal.units) == 2

    def test_one_minimality(self):
        """No single event of the minimal scenario can be removed."""
        minimal, _ = shrink_scenario(_bug_scenario())
        for index in range(len(minimal.events)):
            import dataclasses

            candidate = dataclasses.replace(
                minimal,
                events=minimal.events[:index] + minimal.events[index + 1:],
            )
            assert run_scenario(candidate).failure is None, (
                f"event {index} of the 'minimal' scenario is removable"
            )

    def test_shrunk_result_still_fails(self):
        _, result = shrink_scenario(_bug_scenario())
        assert result.failure is not None
        assert result.failure.oracle in ("differential", "invariant")


class TestWithoutUnit:
    def test_events_renumbered(self):
        scenario = Scenario(
            seed=0,
            units=("a-proto", "b-proto", "c-proto"),
            geometry=Geometry(),
            events=(
                FuzzEvent(0, "read", 0),
                FuzzEvent(1, "read", 0),
                FuzzEvent(2, "write", 1),
            ),
        )
        dropped = _without_unit(scenario, 1)
        assert dropped.units == ("a-proto", "c-proto")
        assert dropped.events == (
            FuzzEvent(0, "read", 0),
            FuzzEvent(1, "write", 1),
        )

"""Fuzz campaign smoke: ``pytest -m fuzz``.

The full 200-seed serial campaign the CI job runs.  Deliberately marked
so the default (tier-1) run stays fast; the campaign itself is pure, so
a failure here is replayable from its seed alone.
"""

import dataclasses

import pytest

from repro.fuzz import CampaignConfig, ScenarioConfig, run_campaign

pytestmark = pytest.mark.fuzz

SMOKE_SEEDS = 200


def test_clean_campaign_200_seeds_serial():
    """No correct mix may fail either oracle over the smoke seed range."""
    report = run_campaign(CampaignConfig(seeds=SMOKE_SEEDS), workers=0)
    assert report.seeds_run == SMOKE_SEEDS
    assert report.ok, report.summary_text()
    # The campaign must actually exercise the differential oracle.
    assert report.transitions_checked > SMOKE_SEEDS


def test_injected_bug_caught_within_smoke_budget(tmp_path):
    """The acceptance-criteria bug (Illinois skipping its IM invalidation)
    is caught, shrinks to <= 6 events, and the repro file re-fails."""
    from repro.fuzz import replay_file

    config = CampaignConfig(
        seeds=SMOKE_SEEDS,
        scenario=dataclasses.replace(
            ScenarioConfig(), inject="illinois-silent-im"
        ),
    )
    report = run_campaign(config, workers=0, out_dir=tmp_path)
    assert report.failures, "bug:illinois-silent-im survived the campaign"
    first = report.failures[0]
    assert len(first.scenario.events) <= 6
    replayed = replay_file(first.repro_path)
    assert replayed.failure is not None, "repro file did not re-fail"

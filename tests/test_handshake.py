"""The broadcast address handshake (sections 2.1-2.2, Figure 2)."""

import pytest

from repro.bus.handshake import SlaveTiming, run_address_handshake


def _slaves(*done_delays):
    return [
        SlaveTiming(f"s{i}", ack_delay=5.0, done_delay=d, position=float(i))
        for i, d in enumerate(done_delays)
    ]


class TestHandshakeCompletion:
    def test_completes_when_slowest_slave_done(self):
        trace = run_address_handshake(_slaves(20.0, 45.0, 30.0))
        assert trace.ai_released_at == trace.as_asserted_at + 45.0

    def test_filter_window_added(self):
        trace = run_address_handshake(_slaves(20.0), filter_window=25.0)
        assert trace.ai_observed_high_at == trace.ai_released_at + 25.0

    def test_address_held_until_all_done(self):
        """The master must keep the address until AI* rises."""
        trace = run_address_handshake(_slaves(20.0, 60.0))
        ad = trace.lines["AD"]
        assert ad.raw_level_at(trace.ai_released_at - 1.0)
        assert not ad.raw_level_at(trace.address_removed_at + 1.0)

    def test_all_slaves_acknowledge(self):
        trace = run_address_handshake(_slaves(20.0, 25.0, 30.0))
        ak = trace.lines["AK*"]
        assert ak.raw_level_at(trace.as_asserted_at + 10.0)

    def test_needs_a_slave(self):
        with pytest.raises(ValueError):
            run_address_handshake([])


class TestGlitches:
    def test_staggered_releases_glitch(self):
        """N slaves releasing at distinct times -> N-1 glitches on AI*."""
        trace = run_address_handshake(_slaves(20.0, 30.0, 40.0, 50.0))
        assert trace.glitch_count == 3

    def test_simultaneous_release_single_glitch_free_edge(self):
        trace = run_address_handshake(_slaves(30.0))
        assert trace.glitch_count == 0


class TestDuration:
    def test_duration_dominated_by_slowest_plus_filter(self):
        fast = run_address_handshake(_slaves(20.0))
        slow = run_address_handshake(_slaves(90.0))
        assert slow.duration - fast.duration == pytest.approx(70.0)

    def test_start_time_offset(self):
        trace = run_address_handshake(_slaves(20.0), start_time=1000.0)
        assert trace.address_valid_from == 1000.0
        assert trace.complete_at > 1000.0

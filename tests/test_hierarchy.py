"""Multi-bus hierarchy (section 6 future work): cluster bridges.

Scenario tests pin the cross-level mechanics (intervention across
clusters, ownership migration, directory states); randomized tests sweep
interleavings; negative tests confirm the hierarchy checker notices
forged inconsistencies."""

import random

import pytest

from repro.hierarchy import (
    ClusterSpec,
    DirectoryState,
    HierarchicalSystem,
)
from repro.system.system import CoherenceError


@pytest.fixture
def grid22():
    return HierarchicalSystem.grid(2, 2)


def units(h):
    return list(h.controllers)


class TestConstruction:
    def test_grid_naming(self, grid22):
        assert units(grid22) == [
            "c0.cpu0", "c0.cpu1", "c1.cpu0", "c1.cpu1",
        ]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalSystem([])

    def test_uniform_line_size_enforced(self):
        with pytest.raises(ValueError, match="uniform"):
            HierarchicalSystem(
                [
                    ClusterSpec("a", line_size=32),
                    ClusterSpec("b", line_size=64),
                ]
            )

    def test_mixed_protocols_within_cluster(self):
        h = HierarchicalSystem(
            [
                ClusterSpec("a", protocols=("moesi", "berkeley")),
                ClusterSpec("b", protocols=("dragon", "write-through")),
            ]
        )
        assert len(h.controllers) == 4


class TestIntraCluster:
    """Traffic that never needs the global bus after the first fetch."""

    def test_local_sharing_stays_local(self, grid22):
        h = grid22
        h.write("c0.cpu0", 0)
        global_before = h.global_bus._serial
        assert h.read("c0.cpu1", 0) == 1  # owner intervenes locally
        assert h.global_bus._serial == global_before

    def test_local_handoff_stays_local(self, grid22):
        h = grid22
        h.write("c0.cpu0", 0)
        h.write("c0.cpu1", 0)
        global_before = h.global_bus._serial
        h.write("c0.cpu0", 0)
        h.read("c0.cpu1", 0)
        assert h.global_bus._serial == global_before

    def test_directory_modified_after_local_write(self, grid22):
        h = grid22
        h.write("c0.cpu0", 0)
        assert h.bridges["c0"].directory_state(0) is DirectoryState.MODIFIED
        assert h.bridges["c1"].directory_state(0) is DirectoryState.INVALID


class TestCrossCluster:
    def test_remote_read_intervenes_through_bridge(self, grid22):
        h = grid22
        token = h.write("c0.cpu0", 0)
        assert h.read("c1.cpu0", 0) == token
        assert h.bridges["c0"].stats.supplies == 1
        assert h.bridges["c0"].directory_state(0) is DirectoryState.OWNED
        assert h.bridges["c1"].directory_state(0) is DirectoryState.SHARED

    def test_remote_write_invalidates_other_cluster(self, grid22):
        h = grid22
        h.write("c0.cpu0", 0)
        h.read("c1.cpu0", 0)
        token = h.write("c1.cpu0", 0)
        # c0's copies must be gone or updated; a read must see the token.
        assert h.read("c0.cpu1", 0) == token
        assert not h.check_coherence()

    def test_ownership_migrates(self, grid22):
        h = grid22
        h.write("c0.cpu0", 0)
        h.write("c1.cpu0", 0)
        assert h.bridges["c1"].directory_state(0).owns
        assert not h.bridges["c0"].directory_state(0).owns

    def test_shared_in_both_clusters(self, grid22):
        h = grid22
        h.write("c0.cpu0", 0)
        h.read("c1.cpu0", 0)
        h.read("c1.cpu1", 0)
        h.read("c0.cpu1", 0)
        states = {
            name: bridge.directory_state(0)
            for name, bridge in h.bridges.items()
        }
        assert states["c0"].owns
        assert states["c1"] is DirectoryState.SHARED
        assert not h.check_coherence()

    def test_no_silent_exclusive_while_globally_shared(self, grid22):
        """The pretend-sharer CH: a local reader must land S (not E) when
        another cluster holds the line."""
        h = grid22
        h.write("c0.cpu0", 0)      # c0 owns
        h.read("c1.cpu0", 0)       # c1 shares
        # A second c1 reader must land S -- the line exists in c0 too.
        h.read("c1.cpu1", 0)
        assert h.controllers["c1.cpu1"].state_of(0).letter == "S"

    def test_first_reader_of_unshared_line_can_take_exclusive(self, grid22):
        h = grid22
        h.read("c0.cpu0", 0)
        assert h.controllers["c0.cpu0"].state_of(0).letter == "E"

    def test_write_back_propagates_on_cross_read(self, grid22):
        """Evicted dirty line lands in the bridge; remote reads get it."""
        h = HierarchicalSystem(
            [
                ClusterSpec("a", protocols=("moesi",), num_sets=1,
                            associativity=1),
                ClusterSpec("b", protocols=("moesi",), num_sets=1,
                            associativity=1),
            ]
        )
        token = h.write("a.cpu0", 0)
        h.write("a.cpu0", 32)          # evicts line 0 -> push to bridge
        assert h.bridges["a"].directory[0].value == token
        assert h.read("b.cpu0", 0) == token

    def test_uncached_style_write_through_cluster(self):
        h = HierarchicalSystem(
            [
                ClusterSpec("a", protocols=("write-through", "moesi")),
                ClusterSpec("b", protocols=("moesi",)),
            ]
        )
        h.read("a.cpu0", 0)
        h.read("b.cpu0", 0)
        token = h.write("a.cpu0", 0)   # WT write past the cache
        assert h.read("b.cpu0", 0) == token
        assert not h.check_coherence()


class TestRandomizedHierarchy:
    @pytest.mark.parametrize(
        "clusters,cpus,seed",
        [(2, 2, 0), (3, 2, 1), (2, 3, 2), (2, 2, 3)],
    )
    def test_random_traffic_clean(self, clusters, cpus, seed):
        h = HierarchicalSystem.grid(clusters, cpus)
        rng = random.Random(seed)
        all_units = units(h)
        for _ in range(1500):
            unit = rng.choice(all_units)
            address = rng.randrange(6) * 32
            if rng.random() < 0.4:
                h.write(unit, address)
            else:
                h.read(unit, address)
        assert not h.check_coherence()

    def test_mixed_protocol_clusters_clean(self):
        h = HierarchicalSystem(
            [
                ClusterSpec("a", protocols=("moesi", "berkeley")),
                ClusterSpec("b", protocols=("dragon", "write-through")),
            ]
        )
        rng = random.Random(7)
        all_units = units(h)
        for _ in range(1500):
            unit = rng.choice(all_units)
            address = rng.randrange(4) * 32
            if rng.random() < 0.4:
                h.write(unit, address)
            else:
                h.read(unit, address)
        assert not h.check_coherence()


class TestHierarchyChecker:
    def test_forged_double_cluster_ownership_detected(self, grid22):
        h = grid22
        h.write("c0.cpu0", 0)
        from repro.hierarchy.bridge import DirectoryEntry

        h.bridges["c1"].directory[0] = DirectoryEntry(
            DirectoryState.MODIFIED, 99
        )
        assert any(
            "multiple owning clusters" in p for p in h.check_coherence()
        )

    def test_forged_stale_leaf_detected(self, grid22):
        h = grid22
        h.write("c0.cpu0", 0)
        h.read("c0.cpu1", 0)
        h.controllers["c0.cpu1"].cache.lookup(0)[2].value = 4242
        with pytest.raises(CoherenceError):
            h.read("c0.cpu1", 0)

    def test_traffic_counters(self, grid22):
        h = grid22
        h.write("c0.cpu0", 0)
        h.read("c1.cpu0", 0)
        traffic = h.traffic()
        assert traffic["global_transactions"] >= 2
        assert traffic["local_transactions"] >= 2


class TestHierarchyFiltering:
    def test_global_bus_sees_less_than_flat_system(self):
        """The point of the hierarchy: cluster-local sharing never hits
        the global bus, so it scales past a single bus's bandwidth."""
        h = HierarchicalSystem.grid(2, 2)
        rng = random.Random(11)
        all_units = units(h)
        for _ in range(2000):
            unit = rng.choice(all_units)
            # Mostly cluster-local lines (per-cluster private regions).
            cluster = unit.split(".")[0]
            base = 0 if cluster == "c0" else 8
            address = (base + rng.randrange(6)) * 32
            h.write(unit, address) if rng.random() < 0.4 else h.read(
                unit, address
            )
        traffic = h.traffic()
        assert traffic["global_transactions"] < traffic["local_transactions"] / 5
        assert not h.check_coherence()


class TestTraceInterface:
    def test_run_trace_with_records(self):
        from repro.workloads.trace import Op, ReferenceRecord, Trace

        h = HierarchicalSystem.grid(2, 1)
        trace = Trace(
            [
                ReferenceRecord("c0.cpu0", Op.WRITE, 0),
                ReferenceRecord("c1.cpu0", Op.READ, 0),
                ReferenceRecord("c1.cpu0", Op.WRITE, 32),
                ReferenceRecord("c0.cpu0", Op.READ, 32),
            ]
        )
        h.run_trace(trace)
        assert h.accesses == 4
        assert not h.check_coherence()


class TestStatsInterfaces:
    def test_bus_stats_count_and_reset(self):
        from repro.core.events import BusEvent
        from repro.system.system import System

        system = System.homogeneous("moesi", 2)
        system.write("cpu0", 0)
        assert system.bus_stats.count(BusEvent.CACHE_READ_FOR_MODIFY) == 1
        system.bus_stats.reset()
        assert system.bus_stats.transactions == 0
        assert system.bus_stats.count(BusEvent.CACHE_READ_FOR_MODIFY) == 0

    def test_controller_stats_reset(self):
        from repro.system.system import System

        system = System.homogeneous("moesi", 1)
        system.read("cpu0", 0)
        controller = system.controllers["cpu0"]
        controller.stats.reset()
        assert controller.stats.reads == 0

"""Unit tests for the cluster bridge internals (directory semantics,
stat counters, the E->M booking rule), plus a hypothesis sweep."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bus.futurebus import Futurebus
from repro.hierarchy import (
    ClusterBridge,
    ClusterSpec,
    DirectoryState,
    HierarchicalSystem,
)
from repro.memory.main_memory import MainMemory


class TestDirectoryState:
    def test_owns_predicate(self):
        assert DirectoryState.MODIFIED.owns
        assert DirectoryState.OWNED.owns
        assert not DirectoryState.SHARED.owns
        assert not DirectoryState.INVALID.owns

    def test_no_exclusive_state(self):
        """Relaxation 12: exclusive grants are booked as M."""
        assert not any(s.value == "E" for s in DirectoryState)


class TestBridgeBookkeeping:
    def test_exclusive_grant_booked_as_modified(self):
        h = HierarchicalSystem.grid(2, 1)
        h.read("c0.cpu0", 0)  # only reader: leaf lands E
        assert h.controllers["c0.cpu0"].state_of(0).letter == "E"
        assert h.bridges["c0"].directory_state(0) is DirectoryState.MODIFIED

    def test_silent_leaf_upgrade_is_covered(self):
        """The reason for the M booking: a silent E->M upgrade must not
        let a remote reader get stale memory data."""
        h = HierarchicalSystem.grid(2, 1)
        h.read("c0.cpu0", 0)
        h.write("c0.cpu0", 0)  # silent E->M inside cluster c0
        token = h._last_version[0]
        assert h.read("c1.cpu0", 0) == token  # bridge intervened
        assert h.bridges["c0"].stats.supplies == 1

    def test_shared_grant_booked_as_shared(self):
        h = HierarchicalSystem.grid(2, 1)
        h.read("c0.cpu0", 0)
        h.read("c1.cpu0", 0)
        assert h.bridges["c1"].directory_state(0) is DirectoryState.SHARED

    def test_global_rfo_counted(self):
        h = HierarchicalSystem.grid(2, 1)
        h.write("c0.cpu0", 0)
        assert h.bridges["c0"].stats.global_rfos == 1

    def test_global_invalidate_counted(self):
        h = HierarchicalSystem.grid(2, 1)
        h.read("c0.cpu0", 0)
        h.read("c1.cpu0", 0)     # both clusters SHARED
        h.write("c0.cpu0", 0)    # local write -> global announce needed
        bridge = h.bridges["c0"]
        assert (
            bridge.stats.global_invalidates
            + bridge.stats.global_broadcast_writes
            >= 1
        )

    def test_cluster_invalidate_counted(self):
        h = HierarchicalSystem.grid(2, 1)
        h.read("c0.cpu0", 0)
        h.read("c1.cpu0", 0)
        h.write("c0.cpu0", 0)
        assert h.bridges["c1"].stats.cluster_invalidates >= 1
        assert not h.controllers["c1.cpu0"].state_of(0).valid

    def test_push_absorbed_without_global_traffic(self):
        """A write-back of an exclusively-held line never leaves the
        cluster."""
        h = HierarchicalSystem(
            [
                ClusterSpec("a", protocols=("moesi",), num_sets=1,
                            associativity=1),
                ClusterSpec("b", protocols=("moesi",)),
            ]
        )
        h.write("a.cpu0", 0)
        before = h.global_bus._serial
        h.write("a.cpu0", 32)    # evicts line 0 -> push (global RFO for
        after_push = h.bridges["a"].directory[0].value
        # line 1 happens, but the *push* itself stays local)
        assert after_push == h._last_version[0]
        # Exactly one global transaction: the RFO for line 1.
        assert h.global_bus._serial == before + 1

    def test_directory_repr(self):
        bus = Futurebus(MainMemory())
        bridge = ClusterBridge("b0", bus)
        assert "b0" in repr(bridge)


class TestHypothesisHierarchy:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1_000_000),
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # unit index
                st.booleans(),                            # write?
                st.integers(min_value=0, max_value=3),    # line
            ),
            max_size=80,
        ),
    )
    def test_random_hierarchy_traffic_checked(self, seed, ops):
        """Every read is validated against the global last-write oracle,
        and the hierarchy invariants are re-checked per reference."""
        h = HierarchicalSystem.grid(2, 2)
        units = list(h.controllers)
        rng = random.Random(seed)
        for unit_index, is_write, line in ops:
            unit = units[unit_index % len(units)]
            address = line * 32
            if is_write:
                h.write(unit, address)
            else:
                h.read(unit, address)
        assert not h.check_coherence()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_mixed_protocol_hierarchy(self, seed):
        h = HierarchicalSystem(
            [
                ClusterSpec("a", protocols=("moesi", "dragon")),
                ClusterSpec("b", protocols=("berkeley", "write-through")),
            ]
        )
        rng = random.Random(seed)
        units = list(h.controllers)
        for _ in range(150):
            unit = rng.choice(units)
            address = rng.randrange(4) * 32
            if rng.random() < 0.4:
                h.write(unit, address)
            else:
                h.read(unit, address)
        assert not h.check_coherence()

"""Arbitrary-depth hierarchies: bridges compose.

Nothing in :class:`~repro.hierarchy.bridge.ClusterBridge` knows whether
its "global" bus is the root or another bridge's local bus, so hierarchies
nest without any new code -- a three-level tree (and mixed-depth trees,
with leaves and sub-bridges sharing one bus) maintains coherence under
oracle-checked random traffic."""

import random

import pytest

from repro.bus.futurebus import Futurebus
from repro.cache.cache import SetAssociativeCache
from repro.cache.controller import CacheController
from repro.hierarchy import ClusterBridge
from repro.memory.main_memory import MainMemory
from repro.protocols.registry import make_protocol


class _Tree:
    """A hand-built nested hierarchy with a last-write oracle."""

    def __init__(self) -> None:
        self.memory = MainMemory()
        self.root = Futurebus(self.memory)
        self.leaves: dict[str, CacheController] = {}
        self._last: dict[int, int] = {}
        self._counter = 0

    def bridge(self, name: str, parent_bus: Futurebus) -> ClusterBridge:
        return ClusterBridge(name, parent_bus)

    def leaf(self, name: str, bus: Futurebus,
             protocol: str = "moesi") -> CacheController:
        controller = CacheController(
            name,
            make_protocol(protocol),
            SetAssociativeCache(num_sets=4, associativity=2),
            bus,
        )
        self.leaves[name] = controller
        return controller

    def write(self, name: str, line: int) -> None:
        self._counter += 1
        self.leaves[name].write(line * 32, self._counter)
        self._last[line] = self._counter

    def read(self, name: str, line: int) -> None:
        got = self.leaves[name].read(line * 32)
        want = self._last.get(line, 0)
        assert got == want, f"{name} line {line}: {got} != {want}"

    def churn(self, steps: int, lines: int = 5, seed: int = 0) -> None:
        rng = random.Random(seed)
        names = list(self.leaves)
        for _ in range(steps):
            name = rng.choice(names)
            line = rng.randrange(lines)
            if rng.random() < 0.4:
                self.write(name, line)
            else:
                self.read(name, line)


@pytest.fixture
def three_level():
    tree = _Tree()
    a = tree.bridge("A", tree.root)
    b = tree.bridge("B", tree.root)
    a1 = tree.bridge("A1", a.local_bus)
    a2 = tree.bridge("A2", a.local_bus)
    tree.leaf("a1x", a1.local_bus)
    tree.leaf("a1y", a1.local_bus)
    tree.leaf("a2x", a2.local_bus)
    tree.leaf("bx", b.local_bus)
    tree.leaf("by", b.local_bus)
    tree.bridges = {"A": a, "B": b, "A1": a1, "A2": a2}
    return tree


class TestThreeLevels:
    def test_cross_subtree_write_read(self, three_level):
        tree = three_level
        tree.write("a1x", 0)   # deepest leaf dirties the line
        tree.read("by", 0)     # read from the other top-level subtree
        tree.write("by", 0)
        tree.read("a1y", 0)    # and back down the other side

    def test_sibling_subclusters(self, three_level):
        tree = three_level
        tree.write("a1x", 1)
        tree.read("a2x", 1)    # crosses A1 -> A -> A2, not the root...
        tree.write("a2x", 1)
        tree.read("a1y", 1)

    def test_sibling_traffic_stays_inside_supercluster(self, three_level):
        tree = three_level
        tree.write("a1x", 2)    # one cold root fetch happens here
        root_before = tree.root._serial
        # Once the line lives inside supercluster A, sibling exchange
        # between A1 and A2 generates no root-bus traffic at all.
        tree.read("a2x", 2)
        tree.read("a1x", 2)
        tree.write("a2x", 2)
        tree.read("a1y", 2)
        assert tree.root._serial == root_before

    def test_random_churn_oracle_checked(self, three_level):
        three_level.churn(2500, seed=11)

    def test_deep_leaf_exclusive_booked_conservatively(self, three_level):
        tree = three_level
        tree.read("a1x", 3)
        # Every bridge on the path records potential ownership (M).
        assert tree.bridges["A1"].directory_state(3).owns
        assert tree.bridges["A"].directory_state(3).owns


class TestMixedDepth:
    def test_leaves_and_subbridges_on_one_bus(self):
        """A leaf cache directly on A's bus coexists with A1's subtree."""
        tree = _Tree()
        a = tree.bridge("A", tree.root)
        a1 = tree.bridge("A1", a.local_bus)
        tree.leaf("shallow", a.local_bus)      # depth 2
        tree.leaf("deep", a1.local_bus)        # depth 3
        tree.leaf("top", tree.root)            # depth 1 (!) on the root
        tree.churn(2000, seed=5)

    def test_mixed_protocols_at_depth(self):
        tree = _Tree()
        a = tree.bridge("A", tree.root)
        a1 = tree.bridge("A1", a.local_bus)
        tree.leaf("d", a1.local_bus, protocol="dragon")
        tree.leaf("k", a1.local_bus, protocol="berkeley")
        tree.leaf("w", a.local_bus, protocol="write-through")
        tree.churn(1500, seed=9)


class TestBoundedFuzz:
    """A scaled-down version of the 400k-trial randomized search that
    found the cross-level bugs now pinned in
    test_hierarchy_regressions.py; kept in the suite as an ongoing
    tripwire."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_protocol_triples(self, seed):
        import itertools

        rng = random.Random(seed)
        pool = [
            "moesi", "moesi-invalidate", "moesi-update", "berkeley",
            "dragon", "write-through", "write-through-noalloc-nobc",
            "non-caching", "non-caching-bc",
        ]
        for _ in range(60):
            tree = _Tree()
            a = tree.bridge("A", tree.root)
            a1 = tree.bridge("A1", a.local_bus)
            tree.leaf("shallow", a.local_bus, protocol=rng.choice(pool))
            tree.leaf("deep", a1.local_bus, protocol=rng.choice(pool))
            tree.leaf("top", tree.root, protocol=rng.choice(pool))
            tree.churn(rng.randrange(5, 25), lines=2,
                       seed=rng.randrange(10**6))

"""Regression tests: bugs found by randomized search over nested
hierarchies, pinned as minimal scenarios.

Each of these is a genuine cross-level protocol subtlety; together they
document the three rules a correct bridge must follow:

1. assert CH on a local broadcast write while the line is visible outside
   the cluster (an upper-level sharer may survive the announce, so the
   writer must land O, not M);
2. forward uncached writes upward with their broadcast-ness *preserved*
   (column 9's everyone-else-invalidates contract differs from column
   10's holders-update contract);
3. preserve the directory state on capture (Table 2: O -> O,DI), because
   a write-through writer on the parent bus retains its copy.
"""

import pytest

from repro.bus.futurebus import Futurebus
from repro.cache.cache import SetAssociativeCache
from repro.cache.controller import CacheController
from repro.hierarchy import ClusterBridge, DirectoryState
from repro.memory.main_memory import MainMemory
from repro.protocols.registry import make_protocol


def _nested(shallow="moesi", deep="moesi", top="moesi"):
    """Root bus with leaf 'top'; bridge A on root with leaf 'shallow';
    bridge A1 inside A with leaf 'deep'."""
    memory = MainMemory()
    root = Futurebus(memory)
    a = ClusterBridge("A", root)
    a1 = ClusterBridge("A1", a.local_bus)
    leaves = {
        "shallow": CacheController(
            "shallow", make_protocol(shallow),
            SetAssociativeCache(num_sets=1, associativity=1), a.local_bus,
        ),
        "deep": CacheController(
            "deep", make_protocol(deep),
            SetAssociativeCache(num_sets=1, associativity=1), a1.local_bus,
        ),
        "top": CacheController(
            "top", make_protocol(top),
            SetAssociativeCache(num_sets=1, associativity=1), root,
        ),
    }
    return leaves, {"A": a, "A1": a1}, memory


class TestBroadcastWriteNeedsPretendSharerCH:
    """Bug 1: deep's broadcast write resolved CH:O/M to M while shallow
    (one level up) retained an updated S copy; deep's next write was then
    silent and shallow read stale data."""

    def test_writer_lands_owned_not_modified(self):
        leaves, bridges, _ = _nested()
        leaves["deep"].read(0)
        leaves["shallow"].read(0)
        leaves["deep"].write(0, 1)
        # The A1 watcher asserted CH on deep's broadcast: deep must be O.
        assert leaves["deep"].state_of(0).letter == "O"

    def test_second_write_reaches_upper_sharer(self):
        leaves, _, _ = _nested()
        leaves["deep"].read(0)
        leaves["shallow"].read(0)
        leaves["deep"].write(0, 1)
        leaves["deep"].write(0, 2)
        assert leaves["shallow"].read(0) == 2


class TestUncachedWriteForwardPreservesBroadcastness:
    """Bug 2: an ownerless uncached write forwarded upward as CA,IM,BC
    hit the illegal broadcast-against-M case; and a column-9 write
    forwarded as a broadcast let remote copies survive that the inner
    cluster believed dead."""

    def test_ownerless_uncached_write_with_remote_owner(self):
        leaves, _, _ = _nested(shallow="non-caching")
        leaves["top"].write(0, 0)  # top owns at the root
        token_holder = leaves["top"]
        # Non-caching shallow writes through its (empty) cluster: must be
        # forwarded as an uncached write, captured by top.
        leaves["shallow"].write(0, 5)
        assert token_holder.value_of(0) == 5
        assert leaves["deep"].read(0) == 5

    def test_col9_contract_holds_across_levels(self):
        leaves, _, _ = _nested(shallow="non-caching")
        leaves["deep"].read(0)
        leaves["top"].read(0)
        leaves["shallow"].write(0, 1)   # column 9 up and down
        leaves["deep"].write(0, 2)
        assert leaves["top"].read(0) == 2


class TestCapturePreservesOwnedState:
    """Bug 3: a bridge capturing a column-9 write forced its entry to
    MODIFIED although the write-through writer on the parent bus retained
    an S copy; the cluster then modified 'silently'."""

    def test_capture_keeps_owned(self):
        leaves, bridges, _ = _nested(
            shallow="write-through-noalloc-nobc", deep="non-caching"
        )
        leaves["deep"].read(0)      # A1 entry M
        leaves["shallow"].read(0)   # A1 downgrades to O, shallow S
        assert bridges["A1"].directory_state(0) is DirectoryState.OWNED
        leaves["shallow"].write(0, 1)  # col 9; A1 captures
        assert bridges["A1"].directory_state(0) is DirectoryState.OWNED

    def test_inner_write_after_capture_reaches_retainer(self):
        leaves, _, _ = _nested(
            shallow="write-through-noalloc-nobc", deep="non-caching"
        )
        leaves["deep"].read(0)
        leaves["shallow"].read(0)
        leaves["shallow"].write(0, 1)
        leaves["deep"].write(0, 2)     # forwarded col 9 invalidates shallow
        assert leaves["shallow"].read(0) == 2

"""Cross-module integration scenarios: longer walks exercising several
subsystems together, with runtime checking enabled throughout."""

import pytest

from repro.analysis.compare import run_protocol_on_trace
from repro.bus.timing import BusTiming
from repro.system.runner import timed_run_from_trace
from repro.system.system import BoardSpec, System
from repro.workloads.patterns import (
    migratory,
    ping_pong,
    private_streams,
    producer_consumer,
    read_mostly,
)
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload


ALL_PATTERNS = {
    "ping_pong": lambda n: ping_pong(rounds=30, processors=n),
    "producer_consumer": lambda n: producer_consumer(
        items=20, consumers=n - 1
    ),
    "read_mostly": lambda n: read_mostly(references=120, processors=n),
    "migratory": lambda n: migratory(handoffs=20, processors=n),
    "private": lambda n: private_streams(
        references_per_processor=30, processors=n
    ),
}


class TestPatternsAcrossProtocols:
    @pytest.mark.parametrize("pattern", sorted(ALL_PATTERNS))
    @pytest.mark.parametrize(
        "protocol", ["moesi", "moesi-invalidate", "berkeley", "dragon"]
    )
    def test_checked_atomic_run(self, pattern, protocol):
        trace = ALL_PATTERNS[pattern](4)
        system = System.homogeneous(protocol, 4)
        system.run_trace(trace)  # check=True raises on any violation
        assert not system.check_coherence()

    @pytest.mark.parametrize("pattern", sorted(ALL_PATTERNS))
    def test_checked_timed_run_heterogeneous(self, pattern):
        trace = ALL_PATTERNS[pattern](4)
        system = System(
            [
                BoardSpec("cpu0", "moesi"),
                BoardSpec("cpu1", "berkeley"),
                BoardSpec("cpu2", "dragon"),
                BoardSpec("cpu3", "write-through"),
            ]
        )
        report = timed_run_from_trace(system, trace).run()
        assert report.accesses == len(trace)
        assert not system.check_coherence()


class TestSmallCachePressure:
    """Tiny caches force constant eviction traffic; everything must stay
    coherent under replacement churn."""

    @pytest.mark.parametrize(
        "protocol",
        ["moesi", "berkeley", "dragon", "illinois", "write-once", "firefly"],
    )
    def test_thrashing_working_set(self, protocol):
        config = SyntheticConfig(
            processors=3,
            shared_blocks=12,
            private_blocks=12,
            p_shared=0.5,
            p_write=0.4,
        )
        trace = SyntheticWorkload(config, seed=9).trace(900)
        system = System.homogeneous(
            protocol, 3, num_sets=2, associativity=1
        )
        system.run_trace(trace)
        assert not system.check_coherence()
        report = system.report()
        caching = system.controllers.values()
        assert sum(c.stats.evictions for c in caching) > 0


class TestRandomRoundRobinPolicies:
    """The paper's "extreme case": random/round-robin action selection."""

    def test_random_policy_long_run(self):
        config = SyntheticConfig(processors=4, p_shared=0.4, p_write=0.4)
        trace = SyntheticWorkload(config, seed=21).trace(2000)
        system = System.homogeneous("moesi-random", 4)
        system.run_trace(trace)
        assert not system.check_coherence()

    def test_round_robin_policy_long_run(self):
        config = SyntheticConfig(processors=4, p_shared=0.4, p_write=0.4)
        trace = SyntheticWorkload(config, seed=22).trace(2000)
        system = System.homogeneous("moesi-round-robin", 4)
        system.run_trace(trace)
        assert not system.check_coherence()

    def test_random_against_fixed_members(self):
        trace = migratory(handoffs=40, processors=3)
        system = System(
            [
                BoardSpec("cpu0", "moesi-random"),
                BoardSpec("cpu1", "dragon"),
                BoardSpec("cpu2", "berkeley"),
            ]
        )
        system.run_trace(trace)
        assert not system.check_coherence()


class TestTimingSensitivity:
    def test_slower_memory_increases_elapsed(self):
        trace = ping_pong(rounds=40)

        def elapsed(memory_latency):
            timing = BusTiming(memory_latency_ns=memory_latency)
            system = System.homogeneous("berkeley", 2, label="t")
            system_timing = timed_run_from_trace(system, trace)
            system.bus.timing = timing
            return system_timing.run().elapsed_ns

        assert elapsed(800.0) > elapsed(100.0)

    def test_report_consistent_between_modes(self):
        """Atomic and timed runs of the same trace agree on traffic
        (timing changes *when*, not *what*, under per-unit streams that
        preserve program order)."""
        trace = private_streams(references_per_processor=40, processors=2)
        atomic = run_protocol_on_trace("moesi", trace, timed=False)
        timed = run_protocol_on_trace("moesi", trace, timed=True)
        assert atomic.bus.transactions == timed.bus.transactions
        assert atomic.miss_ratio == timed.miss_ratio


class TestIoCoprocessorStory:
    """The intro's motivating configuration: CPUs with caches plus an
    I/O processor without one."""

    def test_dma_like_traffic(self):
        system = System(
            [
                BoardSpec("cpu0", "moesi"),
                BoardSpec("cpu1", "moesi"),
                BoardSpec("dma", "non-caching"),
            ]
        )
        # CPUs build up dirty state; the DMA engine streams through it.
        for i in range(8):
            system.write("cpu0", i * 32)
            system.write("cpu1", (i + 8) * 32)
        for i in range(16):
            system.read("dma", i * 32)     # owners must intervene
        for i in range(16):
            system.write("dma", i * 32)    # owners must capture
        assert not system.check_coherence()
        caching = [system.controllers["cpu0"], system.controllers["cpu1"]]
        assert sum(c.stats.interventions_supplied for c in caching) == 16
        assert sum(c.stats.writes_captured for c in caching) == 16

"""System-wide consistency invariants (section 3.1)."""

import pytest

from repro.core.invariants import (
    CopyView,
    InconsistencyError,
    Invariant,
    LineView,
    assert_line_consistent,
    check_line,
)
from repro.core.states import LineState

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


def _view(copies, memory_fresh=True):
    return LineView.of(copies, memory_fresh=memory_fresh)


def _kinds(violations):
    return {v.invariant for v in violations}


class TestConsistentConfigurations:
    """Legal quiescent snapshots produce no violations."""

    @pytest.mark.parametrize(
        "copies,memory_fresh",
        [
            ([], True),
            ([CopyView("a", M)], False),
            ([CopyView("a", E)], True),
            ([CopyView("a", S), CopyView("b", S)], True),
            ([CopyView("a", O), CopyView("b", S)], False),
            ([CopyView("a", O), CopyView("b", S), CopyView("c", S)], True),
            ([CopyView("a", I), CopyView("b", M)], False),
        ],
    )
    def test_no_violations(self, copies, memory_fresh):
        assert check_line(_view(copies, memory_fresh)) == []

    def test_invalid_copies_ignored(self):
        view = _view([CopyView("a", I, fresh=False), CopyView("b", E)])
        assert check_line(view) == []


class TestSingleOwner:
    def test_two_owners_detected(self):
        view = _view([CopyView("a", M), CopyView("b", O)], memory_fresh=False)
        assert Invariant.SINGLE_OWNER in _kinds(check_line(view))

    def test_two_o_states_detected(self):
        view = _view([CopyView("a", O), CopyView("b", O)])
        assert Invariant.SINGLE_OWNER in _kinds(check_line(view))


class TestExclusiveIsSole:
    @pytest.mark.parametrize("state", [M, E])
    def test_exclusive_with_other_copy(self, state):
        view = _view([CopyView("a", state), CopyView("b", S)])
        assert Invariant.EXCLUSIVE_IS_SOLE in _kinds(check_line(view))

    def test_two_exclusives(self):
        view = _view([CopyView("a", E), CopyView("b", E)])
        kinds = _kinds(check_line(view))
        assert Invariant.EXCLUSIVE_IS_SOLE in kinds


class TestFreshness:
    def test_stale_owner(self):
        view = _view([CopyView("a", M, fresh=False)])
        kinds = _kinds(check_line(view))
        assert Invariant.OWNER_CURRENT in kinds

    def test_stale_shared_copy(self):
        view = _view(
            [CopyView("a", O), CopyView("b", S, fresh=False)],
            memory_fresh=False,
        )
        assert Invariant.COPIES_CURRENT in _kinds(check_line(view))

    def test_stale_memory_without_owner(self):
        view = _view([CopyView("a", S)], memory_fresh=False)
        assert Invariant.MEMORY_CURRENT_IF_UNOWNED in _kinds(check_line(view))

    def test_stale_memory_with_owner_is_fine(self):
        view = _view([CopyView("a", M)], memory_fresh=False)
        assert check_line(view) == []


class TestForeignSharedSemantics:
    """Illinois/Firefly/Write-Once S means consistent-with-memory."""

    def test_shared_with_stale_memory_flagged_in_foreign_mode(self):
        view = _view(
            [CopyView("a", O), CopyView("b", S)], memory_fresh=False
        )
        assert check_line(view) == []  # fine for the MOESI class
        kinds = _kinds(check_line(view, memory_consistent_shared=True))
        assert Invariant.MEMORY_CURRENT_IF_SHARED in kinds

    def test_foreign_mode_ok_when_memory_fresh(self):
        view = _view([CopyView("a", S), CopyView("b", S)])
        assert check_line(view, memory_consistent_shared=True) == []


class TestAssertHelper:
    def test_raises_with_all_violations(self):
        view = _view(
            [CopyView("a", M, fresh=False), CopyView("b", O)],
            memory_fresh=False,
        )
        with pytest.raises(InconsistencyError) as excinfo:
            assert_line_consistent(view)
        assert len(excinfo.value.violations) >= 2

    def test_passes_silently(self):
        assert_line_consistent(_view([CopyView("a", E)]))

    def test_violation_str_has_address(self):
        view = LineView.of([CopyView("a", S)], memory_fresh=False,
                           address=0x40)
        (violation,) = check_line(view)
        assert "@0x40" in str(violation)


class TestLineViewAccessors:
    def test_owners_and_valid_copies(self):
        view = _view([CopyView("a", O), CopyView("b", S), CopyView("c", I)])
        assert [c.unit for c in view.owners] == ["a"]
        assert [c.unit for c in view.valid_copies] == ["a", "b"]

"""System-wide consistency invariants (section 3.1)."""

import pytest

from repro.core.invariants import (
    PER_STEP_CHECKERS,
    CopyView,
    InconsistencyError,
    Invariant,
    LineView,
    assert_line_consistent,
    check_line,
    checker_for,
)
from repro.core.states import LineState

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


def _view(copies, memory_fresh=True):
    return LineView.of(copies, memory_fresh=memory_fresh)


def _kinds(violations):
    return {v.invariant for v in violations}


class TestConsistentConfigurations:
    """Legal quiescent snapshots produce no violations."""

    @pytest.mark.parametrize(
        "copies,memory_fresh",
        [
            ([], True),
            ([CopyView("a", M)], False),
            ([CopyView("a", E)], True),
            ([CopyView("a", S), CopyView("b", S)], True),
            ([CopyView("a", O), CopyView("b", S)], False),
            ([CopyView("a", O), CopyView("b", S), CopyView("c", S)], True),
            ([CopyView("a", I), CopyView("b", M)], False),
        ],
    )
    def test_no_violations(self, copies, memory_fresh):
        assert check_line(_view(copies, memory_fresh)) == []

    def test_invalid_copies_ignored(self):
        view = _view([CopyView("a", I, fresh=False), CopyView("b", E)])
        assert check_line(view) == []


class TestSingleOwner:
    def test_two_owners_detected(self):
        view = _view([CopyView("a", M), CopyView("b", O)], memory_fresh=False)
        assert Invariant.SINGLE_OWNER in _kinds(check_line(view))

    def test_two_o_states_detected(self):
        view = _view([CopyView("a", O), CopyView("b", O)])
        assert Invariant.SINGLE_OWNER in _kinds(check_line(view))


class TestExclusiveIsSole:
    @pytest.mark.parametrize("state", [M, E])
    def test_exclusive_with_other_copy(self, state):
        view = _view([CopyView("a", state), CopyView("b", S)])
        assert Invariant.EXCLUSIVE_IS_SOLE in _kinds(check_line(view))

    def test_two_exclusives(self):
        view = _view([CopyView("a", E), CopyView("b", E)])
        kinds = _kinds(check_line(view))
        assert Invariant.EXCLUSIVE_IS_SOLE in kinds


class TestFreshness:
    def test_stale_owner(self):
        view = _view([CopyView("a", M, fresh=False)])
        kinds = _kinds(check_line(view))
        assert Invariant.OWNER_CURRENT in kinds

    def test_stale_shared_copy(self):
        view = _view(
            [CopyView("a", O), CopyView("b", S, fresh=False)],
            memory_fresh=False,
        )
        assert Invariant.COPIES_CURRENT in _kinds(check_line(view))

    def test_stale_memory_without_owner(self):
        view = _view([CopyView("a", S)], memory_fresh=False)
        assert Invariant.MEMORY_CURRENT_IF_UNOWNED in _kinds(check_line(view))

    def test_stale_memory_with_owner_is_fine(self):
        view = _view([CopyView("a", M)], memory_fresh=False)
        assert check_line(view) == []


class TestForeignSharedSemantics:
    """Illinois/Firefly/Write-Once S means consistent-with-memory."""

    def test_shared_with_stale_memory_flagged_in_foreign_mode(self):
        view = _view(
            [CopyView("a", O), CopyView("b", S)], memory_fresh=False
        )
        assert check_line(view) == []  # fine for the MOESI class
        kinds = _kinds(check_line(view, memory_consistent_shared=True))
        assert Invariant.MEMORY_CURRENT_IF_SHARED in kinds

    def test_foreign_mode_ok_when_memory_fresh(self):
        view = _view([CopyView("a", S), CopyView("b", S)])
        assert check_line(view, memory_consistent_shared=True) == []


class TestAssertHelper:
    def test_raises_with_all_violations(self):
        view = _view(
            [CopyView("a", M, fresh=False), CopyView("b", O)],
            memory_fresh=False,
        )
        with pytest.raises(InconsistencyError) as excinfo:
            assert_line_consistent(view)
        assert len(excinfo.value.violations) >= 2

    def test_passes_silently(self):
        assert_line_consistent(_view([CopyView("a", E)]))

    def test_violation_str_has_address(self):
        view = LineView.of([CopyView("a", S)], memory_fresh=False,
                           address=0x40)
        (violation,) = check_line(view)
        assert "@0x40" in str(violation)


class TestLineViewAccessors:
    def test_owners_and_valid_copies(self):
        view = _view([CopyView("a", O), CopyView("b", S), CopyView("c", I)])
        assert [c.unit for c in view.owners] == ["a"]
        assert [c.unit for c in view.valid_copies] == ["a", "b"]


class TestPerStepCheckers:
    """The per-invariant checkers exposed for step-wise oracles.

    Negative paths with *precise* diagnostics: each broken configuration
    must be attributed to exactly the right invariant, naming the units
    and states involved, so a fuzz counterexample reads as a diagnosis
    rather than a boolean.
    """

    def test_registry_covers_every_invariant(self):
        assert set(PER_STEP_CHECKERS) == set(Invariant)

    def test_checker_for_unknown_raises(self):
        with pytest.raises(KeyError):
            checker_for("not-an-invariant")

    def test_two_owners_named_in_diagnostic(self):
        view = _view([CopyView("a", M), CopyView("b", O)],
                     memory_fresh=False)
        (violation,) = checker_for(Invariant.SINGLE_OWNER)(view)
        assert violation.invariant is Invariant.SINGLE_OWNER
        assert "multiple owners" in violation.detail
        assert "a:M" in violation.detail and "b:O" in violation.detail

    def test_single_owner_checker_ignores_other_breakage(self):
        """Each checker judges only its own property: an M copy alongside
        an S copy breaks EXCLUSIVE_IS_SOLE, not SINGLE_OWNER."""
        view = _view([CopyView("a", M), CopyView("b", S)],
                     memory_fresh=False)
        assert checker_for(Invariant.SINGLE_OWNER)(view) == []
        (violation,) = checker_for(Invariant.EXCLUSIVE_IS_SOLE)(view)
        assert "a holds M" in violation.detail
        assert "b:S" in violation.detail

    def test_m_shared_full_check_reports_exclusive_not_owner(self):
        view = _view([CopyView("a", M), CopyView("b", S)],
                     memory_fresh=False)
        kinds = _kinds(check_line(view))
        assert Invariant.EXCLUSIVE_IS_SOLE in kinds
        assert Invariant.SINGLE_OWNER not in kinds

    def test_stale_owner_diagnostic_names_unit_and_state(self):
        view = _view([CopyView("a", O, fresh=False), CopyView("b", S)],
                     memory_fresh=False)
        (violation,) = checker_for(Invariant.OWNER_CURRENT)(view)
        assert violation.detail == "owner a (O) holds stale data"

    def test_stale_memory_under_owner_is_not_unowned_violation(self):
        """O with stale memory is the class's normal operating point; the
        MEMORY_CURRENT_IF_UNOWNED checker must not fire."""
        view = _view([CopyView("a", O), CopyView("b", S)],
                     memory_fresh=False)
        assert checker_for(Invariant.MEMORY_CURRENT_IF_UNOWNED)(view) == []

    def test_stale_memory_without_owner_diagnostic(self):
        view = _view([CopyView("a", S)], memory_fresh=False)
        (violation,) = checker_for(Invariant.MEMORY_CURRENT_IF_UNOWNED)(view)
        assert violation.detail == (
            "no cache owns the line but memory is stale"
        )

    def test_foreign_shared_checker_names_s_holders(self):
        view = _view([CopyView("a", O), CopyView("b", S), CopyView("c", S)],
                     memory_fresh=False)
        (violation,) = checker_for(Invariant.MEMORY_CURRENT_IF_SHARED)(view)
        assert "S copies at b, c" in violation.detail
        assert "foreign-protocol" in violation.detail

    def test_checkers_compose_to_check_line(self):
        """check_line is exactly the union of the default checkers."""
        view = _view(
            [CopyView("a", M, fresh=False), CopyView("b", O)],
            memory_fresh=False,
        )
        composed = []
        for invariant in (
            Invariant.SINGLE_OWNER,
            Invariant.EXCLUSIVE_IS_SOLE,
            Invariant.OWNER_CURRENT,
            Invariant.COPIES_CURRENT,
            Invariant.MEMORY_CURRENT_IF_UNOWNED,
        ):
            composed.extend(checker_for(invariant)(view))
        assert {str(v) for v in composed} == {
            str(v) for v in check_line(view)
        }

    def test_violation_str_carries_address_and_detail(self):
        view = LineView.of([CopyView("a", M), CopyView("b", O)],
                           memory_fresh=False, address=0x80)
        (violation,) = checker_for(Invariant.SINGLE_OWNER)(view)
        text = str(violation)
        assert "@0x80" in text and "multiple owners" in text

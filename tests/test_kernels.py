"""Parallel-kernel workload generators (stencil, reduction, spinlocks)."""

import pytest

from repro.analysis.compare import run_protocol_on_trace
from repro.system.system import System
from repro.workloads.kernels import (
    reduction_trace,
    spinlock_trace,
    stencil_trace,
)
from repro.workloads.trace import Op


class TestStencil:
    def test_reference_count(self):
        # Per iteration per processor: L reads + halo reads + L writes.
        trace = stencil_trace(processors=3, iterations=2,
                              lines_per_processor=4)
        interior_halos = 2 * 2  # middle processor has 2, ends have 1 each
        assert len(trace) == 2 * (3 * (4 + 4) + interior_halos)

    def test_halo_reads_touch_neighbours(self):
        trace = stencil_trace(processors=2, iterations=1,
                              lines_per_processor=2, line_size=32)
        cpu0_reads = {
            r.address // 32 for r in trace
            if r.unit == "cpu0" and r.op is Op.READ
        }
        assert 2 in cpu0_reads  # first line of cpu1's block

    def test_runs_coherently(self):
        trace = stencil_trace()
        system = System.homogeneous("moesi", 4)
        system.run_trace(trace)
        assert not system.check_coherence()

    def test_nearest_neighbour_sharing_only(self):
        """Non-adjacent processors never touch each other's lines."""
        trace = stencil_trace(processors=4, iterations=1,
                              lines_per_processor=4, line_size=32)
        cpu0_lines = {r.address // 32 for r in trace if r.unit == "cpu0"}
        cpu3_lines = {r.address // 32 for r in trace if r.unit == "cpu3"}
        assert cpu0_lines.isdisjoint(cpu3_lines)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            stencil_trace(processors=0)


class TestReduction:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            reduction_trace(processors=3)

    def test_tree_depth(self):
        """log2(P) combining rounds: P-1 combine writes in total."""
        trace = reduction_trace(processors=8, elements_per_processor=1)
        combine_writes = [
            r for r in trace
            if r.op is Op.WRITE and r.address < 8 * 32
        ]
        # One initial partial-sum write per processor + P-1 combines.
        assert len(combine_writes) == 8 + 7

    def test_runs_coherently(self):
        trace = reduction_trace()
        system = System.homogeneous("moesi", 4)
        system.run_trace(trace)
        assert not system.check_coherence()

    def test_root_accumulates(self):
        trace = reduction_trace(processors=4, elements_per_processor=1)
        # cpu0 performs the final combine: last write is to its cell.
        last_write = [r for r in trace if r.op is Op.WRITE][-1]
        assert last_write.unit == "cpu0" and last_write.address == 0


class TestSpinlock:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            spinlock_trace(kind="mcs")

    def test_tas_spins_are_writes(self):
        trace = spinlock_trace(kind="tas", processors=2,
                               acquisitions_per_processor=1,
                               spins_while_waiting=3)
        lock_writes = [
            r for r in trace if r.address == 0 and r.op is Op.WRITE
        ]
        # Per handoff: acquire RMW write + 3 spin RMW writes + release.
        assert len(lock_writes) == 2 * (1 + 3 + 1)

    def test_ttas_spins_are_reads(self):
        trace = spinlock_trace(kind="ttas", processors=2,
                               acquisitions_per_processor=1,
                               spins_while_waiting=3)
        lock_writes = [
            r for r in trace if r.address == 0 and r.op is Op.WRITE
        ]
        assert len(lock_writes) == 2 * (1 + 1)  # acquire + release only

    def test_ttas_generates_less_bus_traffic(self):
        """The classic lesson: spin locally in the cache."""
        tas = run_protocol_on_trace(
            "moesi-invalidate", spinlock_trace(kind="tas"), timed=False
        )
        ttas = run_protocol_on_trace(
            "moesi-invalidate", spinlock_trace(kind="ttas"), timed=False
        )
        assert ttas.bus.transactions < tas.bus.transactions / 3

    def test_runs_coherently_both_kinds(self):
        for kind in ("tas", "ttas"):
            system = System.homogeneous("moesi", 4)
            system.run_trace(spinlock_trace(kind=kind))
            assert not system.check_coherence()

"""Main memory: a stateless-by-design value store (section 3.1.3)."""

from repro.memory.main_memory import MainMemory


class TestValueStore:
    def test_uninitialized_reads_initial_value(self):
        assert MainMemory().read(5) == 0
        assert MainMemory(initial_value=7).read(5) == 7

    def test_write_then_read(self):
        memory = MainMemory()
        memory.write(3, 42)
        assert memory.read(3) == 42

    def test_sparse_addresses(self):
        memory = MainMemory()
        memory.write(10**9, 1)
        assert memory.read(10**9) == 1
        assert len(memory) == 1

    def test_addresses_sorted(self):
        memory = MainMemory()
        memory.write(5, 1)
        memory.write(2, 1)
        assert memory.addresses() == (2, 5)


class TestCounters:
    def test_reads_and_writes_counted(self):
        memory = MainMemory()
        memory.read(0)
        memory.write(0, 1)
        memory.write(1, 1)
        assert memory.stats.reads == 1 and memory.stats.writes == 2

    def test_peek_poke_uncounted(self):
        memory = MainMemory()
        memory.poke(0, 9)
        assert memory.peek(0) == 9
        assert memory.stats.reads == 0 and memory.stats.writes == 0

    def test_stats_reset(self):
        memory = MainMemory()
        memory.read(0)
        memory.stats.reset()
        assert memory.stats.reads == 0

"""Mutation coverage: every registered mutant must be caught.

The negative controls in :mod:`repro.verify.mutations` are only worth
their name if the tooling actually flags each one.  This file pins that
down mutant-by-mutant, on three independent detectors:

* the exhaustive explorer (paired with a correct MOESI partner);
* the static membership validator;
* the fuzzer's differential transition oracle (for the mutants exposed
  as injectable bugs).

A mutant that some detector cannot catch is a *survivor*: mark it
``xfail`` here with a reason rather than deleting it, so the gap stays
visible in every test run.
"""

import pytest

from repro.core.validation import check_membership
from repro.verify.explorer import explore
from repro.verify.mutations import ALL_MUTANTS

#: Mutants a given detector is known not to catch, with the reason.
#: Empty today -- new survivors get an entry, not silence.
EXPLORER_SURVIVORS: dict[str, str] = {}
VALIDATOR_SURVIVORS: dict[str, str] = {}

_MUTANT_IDS = [cls.__name__ for cls in ALL_MUTANTS]


def _xfail_if_survivor(name: str, survivors: dict[str, str]) -> None:
    if name in survivors:
        pytest.xfail(f"known survivor: {survivors[name]}")


@pytest.mark.parametrize("mutant_cls", ALL_MUTANTS, ids=_MUTANT_IDS)
def test_explorer_catches_mutant(mutant_cls):
    """Exhaustive exploration of mutant+partner finds a violation.

    The partner is the mutant's own ``partner_spec`` (BS-adapted bases
    like MESIF must stay homogeneous, exactly as in real scenarios).
    """
    _xfail_if_survivor(mutant_cls.__name__, EXPLORER_SURVIVORS)
    partner = mutant_cls.partner_spec
    result = explore(
        [lambda chooser: mutant_cls(), partner],
        label=f"coverage:{mutant_cls.__name__}+{partner}",
    )
    assert result.violations, (
        f"{mutant_cls.__name__} survived exhaustive exploration: "
        f"{result.states_explored} states, "
        f"{result.transitions_taken} transitions, no violation"
    )


@pytest.mark.parametrize("mutant_cls", ALL_MUTANTS, ids=_MUTANT_IDS)
def test_validator_rejects_mutant(mutant_cls):
    """Static membership checking flags the mutated cell."""
    _xfail_if_survivor(mutant_cls.__name__, VALIDATOR_SURVIVORS)
    mutant = mutant_cls()
    report = check_membership(mutant)
    assert not report.is_member, (
        f"{mutant_cls.__name__} passed membership checking"
    )
    # The mutated cell itself must be flagged -- a base that is already
    # non-member (MESIF) is not allowed to mask the mutation.
    base_report = check_membership(mutant.base)
    assert len(report.issues) > len(base_report.issues), (
        f"{mutant_cls.__name__} added no issue beyond its base "
        f"{mutant.base.name}"
    )


def test_every_mutant_has_explorer_coverage():
    """The parametrization above tracks the registry: adding a mutant to
    ALL_MUTANTS automatically adds it to both detectors' matrices."""
    assert len(ALL_MUTANTS) == len(set(_MUTANT_IDS)) >= 5


def test_injectable_bug_mutants_caught_by_fuzzer():
    """The mutants doubling as fuzz self-test bugs fail a short campaign,
    and their counterexamples shrink to a handful of events."""
    import dataclasses

    from repro.fuzz import CampaignConfig, INJECTABLE_BUGS, ScenarioConfig
    from repro.fuzz.campaign import run_campaign

    mutant_bugs = [
        name for name, bug in INJECTABLE_BUGS.items()
        if bug.base in ("moesi", "moesi-adaptive-threshold", "mesif")
    ]
    assert len(mutant_bugs) >= 4, "no mutants are exposed as injectable bugs"
    for name in mutant_bugs:
        config = CampaignConfig(
            seeds=40,
            scenario=dataclasses.replace(ScenarioConfig(), inject=name),
        )
        report = run_campaign(config, workers=0)
        assert report.failures, f"bug:{name} survived 40 fuzz seeds"
        smallest = min(len(f.scenario.events) for f in report.failures)
        assert smallest <= 6, (
            f"bug:{name} counterexample did not shrink below 6 events"
        )

"""The observability subsystem: tracer, exporters, metrics, profiler."""

import json

import pytest

from repro import Session
from repro.obs.export import (
    bus_rows,
    format_trace,
    render_waveforms,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry, system_metrics
from repro.obs.profile import Profiler
from repro.obs.trace import TraceEvent, Tracer
from repro.workloads import ping_pong


def _traced_run(timed=False, rounds=10):
    session = Session(label="obs-test", trace=True)
    result = session.run_experiment(
        protocol="moesi",
        workload=ping_pong(rounds=rounds, processors=2),
        timed=timed,
    )
    return session, result


class TestTracer:
    def test_bus_and_transition_events_captured(self):
        _, result = _traced_run()
        kinds = {event["kind"] for event in result.trace}
        assert "bus" in kinds and "transition" in kinds

    def test_bus_event_carries_signal_values(self):
        _, result = _traced_run()
        bus_events = [e for e in result.trace if e["kind"] == "bus"]
        assert bus_events
        args = bus_events[0]["args"]
        for signal in ("CA", "IM", "BC", "CH", "DI", "SL", "BS"):
            assert signal in args
        assert "column" in args and "duration_ns" in args

    def test_transition_event_names_the_table_cell(self):
        _, result = _traced_run()
        transitions = [e for e in result.trace if e["kind"] == "transition"]
        assert transitions
        args = transitions[0]["args"]
        assert args["side"] in ("local", "snoop")
        assert set(args) >= {"state", "event", "action"}

    def test_snoop_side_recorded(self):
        _, result = _traced_run()
        sides = {e["args"]["side"] for e in result.trace
                 if e["kind"] == "transition"}
        assert sides == {"local", "snoop"}

    def test_des_events_only_on_timed_runs(self):
        _, atomic = _traced_run(timed=False)
        assert not [e for e in atomic.trace if e["kind"] == "des"]
        _, timed = _traced_run(timed=True)
        des = [e for e in timed.trace if e["kind"] == "des"]
        names = {e["name"] for e in des}
        assert names >= {"schedule", "fire", "retire"}

    def test_seq_is_a_total_order(self):
        _, result = _traced_run()
        seqs = [e["seq"] for e in result.trace]
        assert seqs == list(range(len(seqs)))

    def test_deterministic_across_runs(self):
        _, first = _traced_run()
        _, second = _traced_run()
        assert to_jsonl(first.trace) == to_jsonl(second.trace)

    def test_absorb_renumbers_and_keeps_stream(self):
        parent = Tracer(stream="parent")
        parent.mark("before")
        child = Tracer(stream="child")
        child.mark("x", key=1)
        child.mark("y", key=2)
        parent.absorb(child.export())
        seqs = [e.seq for e in parent.events]
        assert seqs == [0, 1, 2]
        assert parent.events[1].stream == "child"
        parent.absorb(child.export(), stream="renamed")
        assert parent.events[-1].stream == "renamed"

    def test_event_dict_round_trip(self):
        tracer = Tracer()
        tracer.mark("waypoint", unit="cpu0", detail=3)
        (event,) = tracer.events
        assert TraceEvent.from_dict(event.to_dict()) == event


class TestExporters:
    def test_jsonl_is_byte_stable(self, tmp_path):
        _, result = _traced_run()
        path = write_jsonl(tmp_path / "t.jsonl", result.trace)
        lines = path.read_text().splitlines()
        assert len(lines) == len(result.trace)
        assert json.loads(lines[0])["seq"] == 0

    def test_chrome_trace_is_valid(self):
        _, result = _traced_run()
        payload = to_chrome_trace(result.trace, label="t")
        assert validate_chrome_trace(payload) == []

    def test_chrome_bus_events_are_duration_slices(self):
        _, result = _traced_run()
        payload = to_chrome_trace(result.trace)
        slices = [r for r in payload["traceEvents"] if r.get("cat") == "bus"]
        assert slices
        assert all(r["ph"] == "X" and "dur" in r for r in slices)

    def test_chrome_streams_become_processes(self):
        _, result = _traced_run()
        payload = to_chrome_trace(result.trace, label="lbl")
        names = [r["args"]["name"] for r in payload["traceEvents"]
                 if r["ph"] == "M"]
        assert "lbl:obs-test" in names

    def test_write_chrome_trace_file(self, tmp_path):
        _, result = _traced_run()
        path = write_chrome_trace(tmp_path / "t.json", result.trace)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_validator_flags_problems(self):
        assert validate_chrome_trace([]) == ["top level is not an object"]
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "Z"}, {"ph": "X", "name": "n",
                                          "pid": 1, "tid": 1, "ts": 0.0}]}
        )
        assert any("bad phase" in p for p in problems)
        assert any("without dur" in p for p in problems)

    def test_bus_rows_shape(self):
        _, result = _traced_run()
        rows = bus_rows(result.trace)
        assert rows
        assert set(rows[0]) == {"#", "master", "signals", "col", "op",
                                "line", "responses", "supplier",
                                "connectors", "retries", "ns"}

    def test_format_trace_has_title_and_headers(self):
        _, result = _traced_run()
        text = format_trace(result.trace, "capture")
        assert text.splitlines()[0] == "capture"
        assert "signals" in text.splitlines()[1]

    def test_waveforms_render_signal_lines(self):
        _, result = _traced_run()
        text = render_waveforms(result.trace)
        lines = text.splitlines()
        assert lines[0] == "Consistency-line waveform"
        rendered = {line[:3].strip() for line in lines[2:]}
        assert rendered >= {"CA", "IM", "BC", "CH", "DI", "SL", "BS"}
        assert "#" in text  # something was asserted

    def test_waveforms_empty(self):
        assert "(no bus transactions)" in render_waveforms([])


class TestMetricsRegistry:
    def test_counter_accumulator_histogram(self):
        reg = MetricsRegistry(prefix="t")
        reg.counter("c").inc(3)
        reg.accumulator("a").add(1.5)
        reg.histogram("h").observe(2.0)
        reg.histogram("h").observe(4.0)
        snap = reg.to_dict()
        assert snap["t.c"] == 3
        assert snap["t.a"] == 1.5
        assert snap["t.h"]["count"] == 2 and snap["t.h"]["mean"] == 3.0

    def test_metric_objects_are_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert list(reg.to_dict()) == ["a", "b"]

    def test_load_dict_round_trip(self):
        reg = MetricsRegistry(prefix="p")
        reg.counter("c").inc(7)
        reg.accumulator("a").add(2.25)
        reg.histogram("h").observe(5.0)
        restored = MetricsRegistry(prefix="p")
        restored.load_dict(reg.to_dict())
        assert restored.to_dict() == reg.to_dict()

    def test_merge_adds_in_input_order(self):
        reg = MetricsRegistry()
        reg.merge([{"c": 2, "a": 0.5}, {"c": 3, "a": 1.0,
                                        "h": {"count": 1, "total": 9.0,
                                              "min": 9.0, "max": 9.0}}])
        snap = reg.to_dict()
        assert snap["c"] == 5 and snap["a"] == 1.5
        assert snap["h"]["max"] == 9.0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.reset()
        assert reg.to_dict() == {"c": 0}


class TestSystemMetrics:
    def test_snapshot_matches_the_stats_layer(self):
        _, result = _traced_run()
        metrics = result.metrics
        report = result.report
        assert metrics["bus.transactions"] == report.bus.transactions
        assert metrics["cache.accesses"] == report.accesses
        assert metrics["cache.invalidations_received"] == (
            report.invalidations
        )

    def test_per_state_hit_breakdown(self):
        session = Session(label="hits")
        result = session.run_experiment(
            protocol="moesi", workload=ping_pong(rounds=20, processors=2)
        )
        by_state = {name: value for name, value in result.metrics.items()
                    if name.startswith("cache.hits_in_state.")}
        assert by_state
        assert sum(by_state.values()) == result.metrics["cache.hits"]

    def test_system_metrics_is_a_registry(self):
        session = Session(label="reg")
        result = session.run_experiment(
            protocol="dragon", workload=ping_pong(rounds=5, processors=2)
        )
        registry = system_metrics(result.system)
        assert isinstance(registry, MetricsRegistry)
        assert registry.to_dict() == result.metrics


class TestProfiler:
    def test_region_records_and_meta_extension(self):
        profiler = Profiler()
        with profiler.region("stage", size=3) as meta:
            meta["extra"] = True
        (record,) = profiler.records
        assert record.name == "stage"
        assert record.meta == {"size": 3, "extra": True}
        assert record.wall_s >= 0.0

    def test_merge_child_prefix_and_order(self):
        parent = Profiler()
        parent.add("a", 0.1)
        child = Profiler()
        child.add("b", 0.2, n=1)
        parent.merge_child(child.export(), prefix="w0")
        assert [r.name for r in parent.records] == ["a", "w0.b"]

    def test_summary_rows_aggregate(self):
        profiler = Profiler()
        profiler.add("x", 0.1)
        profiler.add("x", 0.3)
        profiler.add("y", 0.2)
        rows = profiler.summary_rows()
        assert rows[0] == {"region": "x", "calls": 2, "wall_s": 0.4}
        assert profiler.total_s("y") == 0.2

    def test_explorer_frontier_region(self):
        session = Session(label="prof", profile=True)
        result = session.explore(["moesi", "moesi"])
        assert result.consistent
        (record,) = [r for r in session.profiler.records
                     if r.name == "explorer.frontier"]
        assert record.meta["states"] == result.states_explored


class TestSystemReportRoundTrip:
    def test_to_json_from_json(self):
        _, result = _traced_run()
        report = result.report
        restored = type(report).from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.to_json() == report.to_json()
        assert restored.bus == report.bus
        assert restored.row() == report.row()

    def test_trace_and_metrics_ride_along(self):
        _, result = _traced_run()
        report = result.report
        assert report.metrics and report.trace
        restored = type(report).from_json(report.to_json())
        assert restored.trace == report.trace
        assert restored.metrics == report.metrics

    def test_untraced_report_serializes_none(self):
        session = Session(label="plain")
        result = session.run_experiment(
            protocol="moesi", workload=ping_pong(rounds=5, processors=2)
        )
        report = result.report
        assert report.trace is None
        restored = type(report).from_json(report.to_json())
        assert restored.trace is None
        assert restored.metrics == report.metrics


class TestSerialParallelEquivalence:
    def test_traced_shootout_merge_is_byte_identical(self):
        serial = Session(label="cmp", trace=True)
        serial.shootout(references=300, workers=None,
                        protocols=["moesi", "dragon", "illinois"])
        parallel = Session(label="cmp", trace=True)
        parallel.shootout(references=300, workers=2,
                          protocols=["moesi", "dragon", "illinois"])
        assert serial.trace_jsonl() == parallel.trace_jsonl()

    def test_traced_verify_marks_are_identical(self):
        from repro.verify.mixes import class_member_mixes

        cases = class_member_mixes()[:4]
        serial = Session(label="v", trace=True)
        serial.verify(cases=cases, workers=None)
        parallel = Session(label="v", trace=True)
        parallel.verify(cases=class_member_mixes()[:4], workers=2)
        assert serial.trace_jsonl() == parallel.trace_jsonl()


@pytest.mark.parametrize("protocol", ["moesi", "illinois", "dragon"])
def test_traced_run_stays_coherent(protocol):
    session = Session(label=protocol, trace=True)
    result = session.run_experiment(
        protocol=protocol, workload=ping_pong(rounds=15, processors=3)
    )
    assert result.ok
    assert len(result.trace) > 0

"""Named sharing patterns."""

import pytest

from repro.workloads.patterns import (
    migratory,
    ping_pong,
    private_streams,
    producer_consumer,
    read_mostly,
)
from repro.workloads.trace import Op


class TestPingPong:
    def test_alternates_writers(self):
        trace = ping_pong(rounds=4, processors=2)
        writers = [r.unit for r in trace if r.op is Op.WRITE]
        assert writers == ["cpu0", "cpu1", "cpu0", "cpu1"]

    def test_single_address(self):
        trace = ping_pong(rounds=10, address=0x80)
        assert trace.addresses() == {0x80}

    def test_length(self):
        assert len(ping_pong(rounds=7)) == 14  # write + read per round


class TestProducerConsumer:
    def test_producer_writes_consumers_read(self):
        trace = producer_consumer(items=3, consumers=2)
        assert all(
            r.op is Op.WRITE if r.unit == "cpu0" else r.op is Op.READ
            for r in trace
        )

    def test_every_consumer_reads_each_item(self):
        trace = producer_consumer(items=5, consumers=3)
        reads = [r for r in trace if r.op is Op.READ]
        assert len(reads) == 15


class TestReadMostly:
    def test_write_cadence(self):
        trace = read_mostly(references=100, writes_every=10)
        writes = sum(1 for r in trace if r.op is Op.WRITE)
        assert writes == 10

    def test_all_processors_participate(self):
        trace = read_mostly(references=40, processors=4)
        assert len(trace.units()) == 4


class TestMigratory:
    def test_each_visit_reads_then_writes(self):
        trace = migratory(handoffs=1, accesses_per_visit=2)
        ops = [r.op for r in trace]
        assert ops == [Op.READ, Op.WRITE, Op.READ, Op.WRITE]

    def test_rotates_processors(self):
        trace = migratory(handoffs=4, processors=4, accesses_per_visit=1)
        visitors = [trace[i * 2].unit for i in range(4)]
        assert visitors == ["cpu0", "cpu1", "cpu2", "cpu3"]


class TestPrivateStreams:
    def test_no_address_shared_between_processors(self):
        trace = private_streams(references_per_processor=20, processors=3)
        owner_of = {}
        for record in trace:
            owner_of.setdefault(record.address, record.unit)
            assert owner_of[record.address] == record.unit

    def test_write_pattern_applied(self):
        trace = private_streams(
            references_per_processor=3,
            processors=1,
            write_fraction_pattern=(Op.WRITE,),
        )
        assert all(r.op is Op.WRITE for r in trace)

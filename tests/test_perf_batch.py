"""The struct-of-arrays batch kernel vs the object engine.

The contract under test is absolute: for every population the kernel
accepts, its per-row snapshots are byte-identical to replaying the same
schedule on a real :class:`repro.system.system.System`, on the numpy
backend and the pure-Python ``array`` backend alike.  The sweep below
drives that across every registered protocol on 50 fuzz-seed-derived
schedules; hypothesis then fuzzes the population shape itself.
"""

import pytest

from repro.fuzz.batchrun import run_batch_campaign
from repro.fuzz.scenario import generate_scenario
from repro.perf.batch import (
    EVENT_KIND_CODES,
    BatchGeometry,
    BatchPopulation,
    NotBatchableError,
    available_backends,
    batchable_specs,
    default_backend,
    envelope_geometry,
    lower_units,
    make_synthetic_population,
    replay_row,
    run_population,
    verify_rows,
)
from repro.protocols.registry import protocol_names

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

FUZZ_SEEDS = 50
NON_BATCHABLE = {
    "moesi-random",
    "moesi-round-robin",
    # Adaptive hybrids carry per-line counters (stateful selection); the
    # lowering rejects them and the object engine runs them instead.
    "moesi-adaptive-threshold",
    "moesi-adaptive-competitive",
}


def _fuzz_population(spec: str, seeds: int = FUZZ_SEEDS) -> BatchPopulation:
    """One population per spec: 50 fuzz-seed event schedules (unit index
    folded to the fixed two-board mix, line addresses already within the
    fixed geometry's range) sharing one geometry so they run as a block."""
    geometry = BatchGeometry(num_sets=2, associativity=1, line_size=32,
                             lines=4)
    events = []
    for seed in range(seeds):
        scenario = generate_scenario(seed)
        events.append(
            [
                (event.unit % 2, EVENT_KIND_CODES[event.kind], event.line)
                for event in scenario.events
            ]
        )
    return BatchPopulation(
        units=(spec, spec),
        geometry=geometry,
        events=events,
        row_ids=tuple(range(seeds)),
    )


class TestRegistrySweep:
    def test_registry_split_is_exhaustive(self):
        specs = set(batchable_specs())
        assert specs == set(protocol_names()) - NON_BATCHABLE

    @pytest.mark.parametrize("spec", sorted(NON_BATCHABLE))
    def test_stateful_selectors_are_rejected(self, spec):
        with pytest.raises(NotBatchableError):
            lower_units((spec,))

    @pytest.mark.parametrize("spec", batchable_specs())
    def test_fuzz_seeds_byte_equivalent_on_every_backend(self, spec):
        """50 fuzz-seed schedules per registered protocol: every backend's
        snapshot of every row equals the object-engine replay, byte for
        byte (tokens, caches, memory, versions, bus counts, crashes)."""
        pop = _fuzz_population(spec)
        results = {
            backend: run_population(pop, backend=backend)
            for backend in available_backends()
        }
        for row in range(pop.rows):
            expected = replay_row(pop, row)
            for backend, result in results.items():
                assert result.snapshots[row] == expected, (
                    f"{spec} row {row} diverged on {backend}"
                )

    def test_verify_rows_reports_no_mismatches(self):
        pop = _fuzz_population("moesi", seeds=10)
        result = run_population(pop)
        assert verify_rows(pop, result) == []


class TestBackends:
    def test_backend_listing(self):
        backends = available_backends()
        assert backends[-1] == "python"
        assert default_backend() == backends[0]
        if HAVE_NUMPY:
            assert backends == ("numpy", "python")

    def test_unknown_backend_rejected(self):
        pop = make_synthetic_population(rows=2, events_per_row=5)
        with pytest.raises(ValueError, match="unavailable"):
            run_population(pop, backend="fortran")

    def test_backends_identical_on_synthetic_population(self):
        pop = make_synthetic_population(
            rows=24,
            units=("moesi", "dragon", "non-caching"),
            events_per_row=60,
            seed=3,
        )
        results = [
            run_population(pop, backend=backend)
            for backend in available_backends()
        ]
        for result in results[1:]:
            assert result.snapshots == results[0].snapshots
            assert result.transitions == results[0].transitions
            assert result.events == results[0].events


#: Deliberately spread in every dimension: sets, ways, line size, and
#: address-space lines all differ between rows, so padded slots, rank
#: sentinels, and per-row strides are all exercised at once.
MIXED_GEOMETRIES = (
    BatchGeometry(num_sets=2, associativity=1, line_size=16, lines=4),
    BatchGeometry(num_sets=4, associativity=2, line_size=32, lines=8),
    BatchGeometry(num_sets=1, associativity=4, line_size=64, lines=6),
    BatchGeometry(num_sets=2, associativity=2, line_size=32, lines=3),
)


class TestHeterogeneousPopulations:
    """Padded mixed-geometry rows: one kernel invocation, per-row
    set/way/linesize, byte-identical to the object engine."""

    def test_envelope_covers_every_dimension(self):
        envelope = envelope_geometry(MIXED_GEOMETRIES)
        assert envelope == BatchGeometry(4, 4, 64, 8)
        for g in MIXED_GEOMETRIES:
            assert envelope.num_sets >= g.num_sets
            assert envelope.associativity >= g.associativity

    def test_geometry_for_falls_back_to_envelope(self):
        pop = make_synthetic_population(rows=2, events_per_row=5)
        assert pop.geometries is None
        assert pop.geometry_for(0) == pop.geometry
        hetero = make_synthetic_population(
            rows=3, events_per_row=5, geometries=MIXED_GEOMETRIES[:2]
        )
        assert hetero.geometry_for(0) == MIXED_GEOMETRIES[0]
        assert hetero.geometry_for(1) == MIXED_GEOMETRIES[1]
        assert hetero.geometry_for(2) == MIXED_GEOMETRIES[0]  # cycles

    def test_row_geometry_exceeding_envelope_rejected(self):
        pop = make_synthetic_population(rows=2, events_per_row=5)
        bad = BatchPopulation(
            units=pop.units,
            geometry=BatchGeometry(2, 1, 32, 4),
            events=[[], []],
            geometries=(
                BatchGeometry(2, 1, 32, 4),
                BatchGeometry(4, 1, 32, 4),  # more sets than the envelope
            ),
        )
        with pytest.raises(ValueError):
            run_population(bad)

    @pytest.mark.parametrize(
        "units",
        [
            ("moesi",),
            ("moesi", "dragon", "non-caching"),
            ("write-once", "firefly"),
        ],
    )
    def test_mixed_geometry_byte_equivalent_on_every_backend(self, units):
        pop = make_synthetic_population(
            rows=20,
            units=units,
            events_per_row=60,
            seed=7,
            p_flush=0.05,
            p_pass=0.05,
            geometries=MIXED_GEOMETRIES,
        )
        assert pop.geometry == envelope_geometry(MIXED_GEOMETRIES)
        results = {
            backend: run_population(pop, backend=backend)
            for backend in available_backends()
        }
        for backend, result in results.items():
            assert verify_rows(pop, result) == [], (
                f"{units} diverged from the object engine on {backend}"
            )
        snapshots = [r.snapshots for r in results.values()]
        for other in snapshots[1:]:
            assert other == snapshots[0]

    def test_scalar_residual_accounting(self):
        pop = make_synthetic_population(
            rows=16, events_per_row=40, seed=1, geometries=MIXED_GEOMETRIES
        )
        for backend in available_backends():
            result = run_population(pop, backend=backend)
            assert result.scalar_events + result.vector_events \
                == result.events
            assert 0.0 <= result.scalar_residual <= 1.0
            if backend == "python":
                # The portable interpreter is all-scalar by definition.
                assert result.scalar_residual == 1.0


class TestShardedBatchCampaign:
    """Seed-range sharding must never leak into the report."""

    @pytest.mark.parametrize("shards", [2, 8])
    def test_shard_count_invariant(self, shards):
        base = run_batch_campaign(seeds=40, oracle_sample=1, shards=1)
        got = run_batch_campaign(seeds=40, oracle_sample=1, shards=shards)
        assert got.summary_json() == base.summary_json()

    def test_pooled_shards_match_serial(self):
        base = run_batch_campaign(seeds=24, oracle_sample=1, shards=1)
        got = run_batch_campaign(
            seeds=24, oracle_sample=1, shards=4, workers=2
        )
        assert got.summary_json() == base.summary_json()

    def test_mixed_geometry_seeds_merge_into_one_population(self):
        # Fuzz scenarios draw varied geometries; with units-only grouping
        # a mix must appear at most once per campaign.
        report = run_batch_campaign(seeds=60, oracle_sample=1)
        assert report.populations <= report.batched_rows
        assert report.ok


class TestBatchCampaign:
    def test_fifty_seed_campaign_matches_oracle(self):
        report = run_batch_campaign(seeds=FUZZ_SEEDS, oracle_sample=1)
        assert report.ok
        assert report.mismatches == []
        assert report.batched_rows + report.fallback_rows == FUZZ_SEEDS
        assert report.batched_rows > 0 and report.fallback_rows > 0
        assert report.fallback_failures == 0

    def test_campaign_backend_invariant(self):
        reports = [
            run_batch_campaign(seeds=30, oracle_sample=1, backend=backend)
            for backend in available_backends()
        ]
        dicts = [r.to_dict() for r in reports]
        for d in dicts:
            d.pop("backend")
        assert all(d == dicts[0] for d in dicts[1:])


class TestSweepEntryPoints:
    def test_batch_protocol_sweep_rows(self):
        from repro.perf.sweeps import batch_protocol_sweep

        rows = batch_protocol_sweep(
            protocols=("moesi", "berkeley"), rows=6, events_per_row=30,
            workers=0,
        )
        assert [r["protocol"] for r in rows] == ["moesi", "berkeley"]
        for row in rows:
            assert row["crashes"] == 0
            assert row["transitions"] > 0
            assert row["backend"] in available_backends()

    def test_batch_matrix_verifies(self):
        from repro.perf.matrix import run_batch_matrix

        rows = run_batch_matrix(
            specs=("moesi", "non-caching"), rows=4, events_per_row=25,
            workers=0,
        )
        assert all(row["ok"] for row in rows)
        assert all(row["verified_rows"] == 2 for row in rows)

    def test_api_facade(self):
        from repro.api import batch_sweep

        rows = batch_sweep(protocols=("dragon",), rows=4, events_per_row=20)
        assert rows[0]["protocol"] == "dragon"
        assert rows[0]["crashes"] == 0


class TestKernelShapes:
    """Shape/dtype invariants of the kernel's columns and snapshots."""

    def test_hypothesis_population_shapes(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        specs = st.sampled_from(
            ("moesi", "berkeley", "dragon", "write-through", "non-caching")
        )

        @settings(max_examples=20, deadline=None)
        @given(
            rows=st.integers(min_value=1, max_value=12),
            units=st.lists(specs, min_size=1, max_size=3),
            events_per_row=st.integers(min_value=0, max_value=25),
            seed=st.integers(min_value=0, max_value=2**16),
            num_sets=st.sampled_from((1, 2, 4)),
            associativity=st.sampled_from((1, 2)),
            lines=st.integers(min_value=1, max_value=6),
            p_write=st.floats(min_value=0.0, max_value=1.0),
        )
        def check(rows, units, events_per_row, seed, num_sets,
                  associativity, lines, p_write):
            geometry = BatchGeometry(
                num_sets=num_sets,
                associativity=associativity,
                line_size=32,
                lines=lines,
            )
            pop = make_synthetic_population(
                rows=rows,
                units=tuple(units),
                geometry=geometry,
                events_per_row=events_per_row,
                seed=seed,
                p_write=p_write,
                p_flush=0.05,
                p_pass=0.05,
            )
            results = [
                run_population(pop, backend=backend)
                for backend in available_backends()
            ]
            for result in results:
                assert result.rows == rows
                assert len(result.snapshots) == rows
                for snapshot in result.snapshots:
                    assert len(snapshot["memory"]) == lines
                    assert len(snapshot["last_version"]) == lines
                    assert len(snapshot["caches"]) == len(units)
                    assert all(
                        isinstance(value, int) for value in snapshot["memory"]
                    )
                    crash = snapshot["crash"]
                    assert crash is None or len(crash) == 2
            for result in results[1:]:
                assert result.snapshots == results[0].snapshots

        check()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend absent")
    def test_numpy_columns_are_int64(self):
        import numpy as np

        from repro.perf.batch import _Kernel, lower_units

        pop = make_synthetic_population(rows=3, events_per_row=10)
        kernel = _Kernel(pop, lower_units(pop.units), "numpy")
        geometry = pop.geometry
        cells = (
            pop.rows
            * len(pop.units)
            * geometry.num_sets
            * geometry.associativity
        )
        for name in ("st", "tg", "val", "rk"):
            column = getattr(kernel, name)
            assert column.dtype == np.int64
            assert column.shape == (cells,)
        for name in ("mem", "lastv"):
            column = getattr(kernel, name)
            assert column.dtype == np.int64
            assert column.shape == (pop.rows * geometry.lines,)

"""Warm persistent pool and chunked scheduling contract tests.

:mod:`repro.perf.engine` must preserve the ``parallel_map`` guarantees
(deterministic order, propagating exceptions, per-task timeouts, serial
fallback) while keeping one pool alive across calls.  The timeout path
additionally terminates stuck workers, so a hung task costs the caller
its timeout rather than the task's full runtime.
"""

from __future__ import annotations

import os
import time
import warnings

import pytest

from repro.deprecation import reset_deprecation_warnings
from repro.perf.engine import (
    ParallelTimeoutError,
    default_chunk_size,
    get_executor,
    pool_stats,
    run_chunked,
    shutdown_pool,
)
from repro.perf.pool import ParallelConfig, parallel_map


def _square(x: int) -> int:
    return x * x


def _hang_on_three(x: int) -> int:
    if x == 3:
        time.sleep(30)
    return x


def _burn(n: int) -> int:
    total = 0
    for i in range(250_000):
        total += i % 7
    return total + n


class TestChunking:
    def test_default_chunk_size_targets_four_chunks_per_worker(self):
        assert default_chunk_size(32, 2) == 4
        assert default_chunk_size(100, 4) == 7  # ceil(100 / 16)
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(5, 1) == 2

    def test_results_spliced_in_input_order(self):
        items = list(range(53))  # deliberately not a chunk multiple
        assert run_chunked(_square, items, 2) == [x * x for x in items]

    def test_chunk_size_override_respected(self):
        before = pool_stats()["chunks"]
        run_chunked(_square, list(range(20)), 2, chunk_size=5)
        assert pool_stats()["chunks"] == before + 4

    def test_empty_items_short_circuit(self):
        assert run_chunked(_square, [], 2) == []

    def test_serial_and_parallel_results_identical(self):
        items = list(range(40))
        serial = parallel_map(_square, items, ParallelConfig(mode="serial"))
        pooled = parallel_map(
            _square, items, ParallelConfig(workers=2, mode="process")
        )
        assert serial == pooled == [x * x for x in items]


class TestWarmPool:
    def test_pool_persists_across_maps(self):
        shutdown_pool()
        config = ParallelConfig(workers=2, mode="process")
        parallel_map(_square, list(range(8)), config)
        starts_after_first = pool_stats()["pool_starts"]
        parallel_map(_square, list(range(8)), config)
        parallel_map(_square, list(range(8)), config)
        stats = pool_stats()
        assert stats["pool_starts"] == starts_after_first
        assert stats["pool_reuses"] >= 2

    def test_pool_grows_for_larger_requests(self):
        shutdown_pool()
        small = get_executor(1)
        grown = get_executor(2)
        assert grown is not small
        # A later smaller request reuses the grown pool.
        assert get_executor(1) is grown
        shutdown_pool()

    def test_shutdown_pool_is_idempotent(self):
        shutdown_pool()
        shutdown_pool()
        assert parallel_map(
            _square, [1, 2, 3], ParallelConfig(workers=2, mode="process")
        ) == [1, 4, 9]


class TestTimeout:
    def test_timeout_names_task_and_terminates_workers(self):
        config = ParallelConfig(workers=2, task_timeout_s=0.5)
        start = time.perf_counter()
        with pytest.raises(ParallelTimeoutError) as err:
            parallel_map(_hang_on_three, [1, 3], config)
        elapsed = time.perf_counter() - start
        assert err.value.index == 1
        assert err.value.timeout_s == 0.5
        # The 30s sleeper was terminated, not joined.
        assert elapsed < 10.0

    def test_pool_recovers_after_timeout(self):
        config = ParallelConfig(workers=2, task_timeout_s=0.5)
        with pytest.raises(ParallelTimeoutError):
            parallel_map(_hang_on_three, [1, 3], config)
        assert parallel_map(
            _square, list(range(6)), ParallelConfig(workers=2)
        ) == [x * x for x in range(6)]


class TestDegradeWarnings:
    def test_unpicklable_fallback_warns_once(self):
        reset_deprecation_warnings()
        config = ParallelConfig(workers=2)
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            assert parallel_map(lambda x: x + 1, [1, 2], config) == [2, 3]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parallel_map(lambda x: x + 1, [1, 2], config) == [2, 3]
        reset_deprecation_warnings()

    def test_serial_mode_never_warns(self):
        reset_deprecation_warnings()
        config = ParallelConfig(workers=4, mode="serial")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parallel_map(lambda x: x + 1, [1, 2], config) == [2, 3]


class TestAdaptiveCutover:
    """Cheap ``"auto"`` maps stay off the pool entirely (no warning:
    staying serial below the cutover is the optimization working)."""

    def test_cheap_auto_map_skips_the_pool(self, monkeypatch):
        import repro.perf.pool as pool_mod

        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 4)
        before = pool_stats()["maps"]
        result = parallel_map(
            _square, list(range(20)), ParallelConfig(workers=4)
        )
        assert result == [x * x for x in range(20)]
        assert pool_stats()["maps"] == before

    def test_single_core_auto_map_skips_even_the_probe(self, monkeypatch):
        import repro.perf.pool as pool_mod

        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 1)
        before = pool_stats()["maps"]
        assert parallel_map(
            _square, [1, 2, 3], ParallelConfig(workers=4)
        ) == [1, 4, 9]
        assert pool_stats()["maps"] == before

    def test_expensive_auto_map_still_pools(self, monkeypatch):
        import repro.perf.pool as pool_mod

        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 4)
        # A zero threshold makes every projected cost "expensive", so the
        # probe's head result must splice back in front of pooled tails.
        monkeypatch.setattr(pool_mod, "ADAPTIVE_CUTOVER_S", 0.0)
        before = pool_stats()["maps"]
        result = parallel_map(
            _square, list(range(10)), ParallelConfig(workers=2)
        )
        assert result == [x * x for x in range(10)]
        assert pool_stats()["maps"] == before + 1

    def test_process_mode_bypasses_the_probe(self):
        before = pool_stats()["maps"]
        result = parallel_map(
            _square,
            list(range(6)),
            ParallelConfig(workers=2, mode="process"),
        )
        assert result == [x * x for x in range(6)]
        assert pool_stats()["maps"] == before + 1


@pytest.mark.perf
@pytest.mark.skipif(
    (os.cpu_count() or 1) <= 2, reason="speedup needs > 2 cores"
)
def test_parallel_at_least_as_fast_as_serial_on_multicore():
    """With the pool warm, fanning CPU-bound work across >= 2 cores must
    not lose to the serial loop (the whole point of the engine)."""
    items = list(range(8))
    parallel_map(_burn, items, ParallelConfig(workers=2))  # warm the pool
    start = time.perf_counter()
    serial = parallel_map(_burn, items, ParallelConfig(mode="serial"))
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    pooled = parallel_map(_burn, items, ParallelConfig(workers=2))
    parallel_s = time.perf_counter() - start
    assert pooled == serial
    assert parallel_s <= serial_s * 1.10

"""Parallel-vs-serial equivalence of the verification matrix and the DES
sweeps, plus the marker-gated perf smoke suite."""

import json
import os

import pytest

from repro.verify.mixes import (
    MixCase,
    SUITES,
    class_member_mixes,
    incompatible_mixes,
    mutant_mixes,
    run_matrix,
)


class TestSuiteRefs:
    def test_factories_stamp_their_cases(self):
        for name, factory in SUITES.items():
            for index, case in enumerate(factory()):
                assert case.suite_ref == (name, index)

    def test_refs_rebuild_identical_cases(self):
        """A worker resolves (suite, index) back to the same case."""
        for case in class_member_mixes():
            suite, index = case.suite_ref
            rebuilt = SUITES[suite]()[index]
            assert rebuilt.specs == case.specs
            assert rebuilt.label == case.label


class TestMatrixEquivalence:
    def test_pool_rows_byte_identical_to_serial(self):
        """The satellite claim: pooled run_matrix returns byte-identical
        summaries (states, transitions, violations verdict) to serial."""
        cases = (
            class_member_mixes()[:5]
            + incompatible_mixes()[:2]
            + mutant_mixes()[:2]  # callable specs -> suite-ref path
        )
        serial = run_matrix(cases)
        pooled = run_matrix(cases, workers=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_unstamped_callable_case_runs_inline_in_order(self):
        from repro.verify.mutations import NoInterventionMutant

        adhoc = MixCase(
            [lambda chooser: NoInterventionMutant(), "moesi"],
            False,
            label="adhoc-mutant+moesi",
        )
        assert adhoc.suite_ref is None
        cases = [class_member_mixes()[0], adhoc, class_member_mixes()[4]]
        serial = run_matrix(cases)
        pooled = run_matrix(cases, workers=2)
        assert serial == pooled
        assert [r["mix"] for r in pooled] == [
            "moesi+moesi", "adhoc-mutant+moesi", "moesi-invalidate+moesi-update",
        ]

    def test_explorer_kwargs_reach_the_workers(self):
        serial = run_matrix(class_member_mixes()[:1], max_states=5)
        pooled = run_matrix(class_member_mixes()[:1], workers=2, max_states=5)
        assert serial == pooled
        # The bound truncated the search well short of the full 18-state
        # space, proving max_states made it into the worker.
        assert serial[0]["states"] < 18


class TestSweepEquivalence:
    def test_protocol_comparison(self):
        from repro.analysis.compare import protocol_comparison

        serial = protocol_comparison(references=200)
        pooled = protocol_comparison(references=200, workers=2)
        assert serial == pooled

    def test_update_vs_invalidate(self):
        from repro.analysis.compare import update_vs_invalidate_sweep

        serial = update_vs_invalidate_sweep(
            sharing_levels=(0.1, 0.5), references=200
        )
        pooled = update_vs_invalidate_sweep(
            sharing_levels=(0.1, 0.5), references=200, workers=2
        )
        assert serial == pooled

    def test_heterogeneous_mixes(self):
        from repro.analysis.compare import heterogeneous_mix_sweep

        serial = heterogeneous_mix_sweep(references=200)
        pooled = heterogeneous_mix_sweep(references=200, workers=2)
        assert serial == pooled


@pytest.mark.perf
class TestPerfSmoke:
    """Small-bound bench suite: asserts the parallel path keeps up on
    multi-core hosts and that the report round-trips through the JSON
    writer (into a tmp dir, never the committed baseline)."""

    def test_bench_suite_and_record(self, tmp_path):
        from repro.perf.bench import run_bench_suite, write_bench_json

        report = run_bench_suite(workers=4, quick=True)
        assert report["matrix"]["all_ok"]
        assert report["matrix"]["rows_identical"]
        assert report["des"]["rows_identical"]
        # The in-process hot path must beat the seed's throughput (the
        # seed explored full-class+full-class at ~125 states/sec on this
        # suite's reference container; memoized cells roughly double it).
        hot = report["explorer"][0]
        assert hot["mix"] == "full-class+full-class"
        assert hot["states"] == 18 and hot["transitions"] == 1028
        if (os.cpu_count() or 1) > 2:
            # Pool startup cannot eat the win once real cores exist (on
            # a <= 2-core host the serial cost probe plus pool overhead
            # can eat the single spare core, so the bound is not
            # reliable there).
            assert report["matrix"]["speedup"] >= 1.0
        # Never write the repo-root BENCH_perf.json here: that file is
        # the canonical full-mode baseline (python -m repro bench
        # --workers 4) that CI diffs against, and a quick-mode report
        # would poison the regression gates.
        path = tmp_path / "BENCH_perf.json"
        write_bench_json(report, str(path))
        assert json.loads(path.read_text())["suite"] == "repro-bench"

"""The parallel_map primitive: ordering, fallback, timeouts, errors."""

import time

import pytest

from repro.perf.pool import (
    ParallelConfig,
    ParallelTimeoutError,
    parallel_map,
    resolve_workers,
)


def _square(x):
    return x * x


def _sleep_then_square(x):
    # The highest input sleeps longest, so completion order is the
    # reverse of submission order.
    time.sleep(0.01 * x)
    return x * x


def _boom(x):
    raise ValueError(f"boom on {x}")


def _hang_on_seven(x):
    if x == 7:
        time.sleep(30.0)
    return x


class TestResolveWorkers:
    def test_explicit_wins(self):
        assert resolve_workers(3) == 3

    def test_floor_is_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-5) == 1

    def test_default_is_positive(self):
        assert resolve_workers(None) >= 1


class TestParallelConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ParallelConfig(mode="threads")

    def test_effective_workers(self):
        assert ParallelConfig(workers=2).effective_workers == 2


class TestParallelMap:
    def test_empty_input(self):
        assert parallel_map(_square, []) == []

    def test_serial_mode(self):
        config = ParallelConfig(mode="serial")
        assert parallel_map(_square, [1, 2, 3], config) == [1, 4, 9]

    def test_single_worker_runs_serially(self):
        config = ParallelConfig(workers=1, mode="process")
        assert parallel_map(_square, [3, 4], config) == [9, 16]

    def test_pool_results_in_input_order(self):
        config = ParallelConfig(workers=2, mode="process")
        values = [3, 2, 1, 0]
        assert parallel_map(_sleep_then_square, values, config) == [
            9, 4, 1, 0,
        ]

    def test_unpicklable_fn_falls_back_to_serial(self):
        config = ParallelConfig(workers=2, mode="process")
        assert parallel_map(lambda x: x + 1, [1, 2], config) == [2, 3]

    def test_unpicklable_item_falls_back_to_serial(self):
        config = ParallelConfig(workers=2, mode="process")
        items = [iter([1])]  # generators cannot be pickled
        assert parallel_map(next, items, config) == [1]

    def test_task_error_propagates_serial(self):
        config = ParallelConfig(mode="serial")
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1], config)

    def test_task_error_propagates_pooled(self):
        config = ParallelConfig(workers=2, mode="process")
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2], config)

    def test_timeout_raises_and_names_a_task(self):
        # Two items so the map actually uses the pool (a single item
        # degrades to the serial path by design).
        config = ParallelConfig(
            workers=2, mode="process", task_timeout_s=0.5
        )
        with pytest.raises(ParallelTimeoutError):
            parallel_map(_hang_on_seven, [1, 7], config)

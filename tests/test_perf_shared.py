"""Zero-copy shared transition tables and the pool's epoch refresh.

The contract: a :class:`repro.core.transitions.BatchTables` rebuilt from
the packed shared-memory image compares equal to one lowered directly
from the protocol, for every batchable registry spec; attaching a
segment seeds the kernel's lowering cache so workers never probe a
protocol; and toggling ``set_fast_tables`` after the warm pool forked
restarts the pool instead of reusing workers that froze the old setting.
"""

import pytest

from repro.core.transitions import (
    BatchTables,
    lower_batch_tables,
    set_fast_tables,
    tables_epoch,
)
from repro.perf import shared
from repro.perf.batch import batchable_specs
from repro.protocols.registry import make_protocol


@pytest.fixture
def segment():
    name = shared.publish_tables()
    yield name
    shared.unlink_tables(name)


class TestPacking:
    def test_round_trip_every_batchable_spec(self):
        specs = batchable_specs()
        tables = {
            spec: lower_batch_tables(make_protocol(spec)) for spec in specs
        }
        rebuilt = shared.unpack_tables(shared.pack_tables(tables))
        assert set(rebuilt) == set(specs)
        for spec in specs:
            assert rebuilt[spec] == tables[spec], spec
            assert isinstance(rebuilt[spec], BatchTables)

    def test_non_caching_flag_survives(self):
        tables = {"non-caching": lower_batch_tables(make_protocol("non-caching"))}
        rebuilt = shared.unpack_tables(shared.pack_tables(tables))
        assert rebuilt["non-caching"].non_caching is True

    def test_garbage_buffer_rejected(self):
        with pytest.raises(shared.SharedTablesError):
            shared.unpack_tables(b"\0" * 64)

    def test_truncated_segment_rejected(self):
        image = shared.pack_tables(
            {"moesi": lower_batch_tables(make_protocol("moesi"))}
        )
        with pytest.raises(shared.SharedTablesError, match="truncated"):
            shared.unpack_tables(image[: len(image) // 2])


class TestSegmentLifecycle:
    def test_publish_attach_unlink(self, segment):
        got = shared.attach_tables(segment, seed_kernel_cache=False)
        for spec in batchable_specs():
            assert got[spec] == lower_batch_tables(make_protocol(spec))

    def test_attach_seeds_kernel_cache(self, segment):
        from repro.perf import batch

        saved = dict(batch._LOWERED)
        batch._LOWERED.clear()
        try:
            shared.attach_tables(segment)
            assert set(batchable_specs()) <= set(batch._LOWERED)
            # The seeded entries ARE the attached objects, not copies.
            attached = shared.attach_tables(segment, seed_kernel_cache=False)
            assert batch._LOWERED["moesi"] is attached["moesi"]
        finally:
            batch._LOWERED.clear()
            batch._LOWERED.update(saved)

    def test_attach_is_memoized_per_segment(self, segment):
        first = shared.attach_tables(segment, seed_kernel_cache=False)
        second = shared.attach_tables(segment, seed_kernel_cache=False)
        assert first["moesi"] is second["moesi"]

    def test_attach_missing_segment_raises(self):
        with pytest.raises(Exception):
            shared.attach_tables("psm_repro_no_such_segment")


class TestPoolEpochRefresh:
    def test_toggle_bumps_epoch_once_per_change(self):
        before = tables_epoch()
        previous = set_fast_tables(True)
        try:
            bumped = tables_epoch()
            assert bumped == before + (0 if previous else 1)
            set_fast_tables(True)  # no-op: same value
            assert tables_epoch() == bumped
        finally:
            set_fast_tables(previous)

    def test_warm_pool_restarts_after_toggle(self):
        from repro.perf import engine

        original = set_fast_tables(True)  # pin, so the flip below changes
        try:
            try:
                executor = engine.get_executor(1)
            except (OSError, ValueError):
                pytest.skip("process pools unavailable in this sandbox")
            assert engine.get_executor(1) is executor  # warm reuse
            before = engine.pool_stats()["pool_refreshes"]
            set_fast_tables(False)  # guaranteed effective change
            refreshed = engine.get_executor(1)
            assert refreshed is not executor
            assert engine.pool_stats()["pool_refreshes"] == before + 1
            # Same epoch again: the fresh pool is reusable.
            assert engine.get_executor(1) is refreshed
        finally:
            set_fast_tables(original)
            engine.shutdown_pool(wait=False)

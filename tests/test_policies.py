"""Action-selection policies (section 3.4)."""

import pytest

from repro.core.events import BusEvent, LocalEvent
from repro.core.policy import (
    InvalidatePolicy,
    PreferredPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    UpdatePolicy,
    policy_by_name,
)
from repro.core.states import LineState
from repro.core.transitions import local_choices, snoop_choices

S = LineState.SHAREABLE
O = LineState.OWNED

WRITE_CHOICES = local_choices(O, LocalEvent.WRITE)
SNOOP_CHOICES = snoop_choices(S, BusEvent.CACHE_BROADCAST_WRITE)


class TestPreferredPolicy:
    def test_local_takes_first(self):
        chosen = PreferredPolicy().choose_local(
            O, LocalEvent.WRITE, WRITE_CHOICES
        )
        assert chosen is WRITE_CHOICES[0]

    def test_snoop_takes_first(self):
        chosen = PreferredPolicy().choose_snoop(
            S, BusEvent.CACHE_BROADCAST_WRITE, SNOOP_CHOICES
        )
        assert chosen is SNOOP_CHOICES[0]


class TestInvalidatePolicy:
    def test_local_prefers_address_only_invalidate(self):
        chosen = InvalidatePolicy().choose_local(
            O, LocalEvent.WRITE, WRITE_CHOICES
        )
        assert chosen.signals.im and not chosen.signals.bc

    def test_snoop_prefers_dropping(self):
        chosen = InvalidatePolicy().choose_snoop(
            S, BusEvent.CACHE_BROADCAST_WRITE, SNOOP_CHOICES
        )
        assert not chosen.retains_copy

    def test_falls_back_when_no_invalidate_option(self):
        choices = local_choices(LineState.MODIFIED, LocalEvent.READ)
        chosen = InvalidatePolicy().choose_local(
            LineState.MODIFIED, LocalEvent.READ, choices
        )
        assert chosen is choices[0]


class TestUpdatePolicy:
    def test_local_prefers_broadcast(self):
        chosen = UpdatePolicy().choose_local(O, LocalEvent.WRITE, WRITE_CHOICES)
        assert chosen.signals.bc

    def test_snoop_prefers_retaining(self):
        chosen = UpdatePolicy().choose_snoop(
            S, BusEvent.CACHE_BROADCAST_WRITE, SNOOP_CHOICES
        )
        assert chosen.retains_copy


class TestRandomPolicy:
    def test_deterministic_given_seed(self):
        a = [
            RandomPolicy(seed=42).choose_local(O, LocalEvent.WRITE, WRITE_CHOICES)
            for _ in range(5)
        ]
        b = [
            RandomPolicy(seed=42).choose_local(O, LocalEvent.WRITE, WRITE_CHOICES)
            for _ in range(5)
        ]
        assert a == b

    def test_eventually_covers_all_choices(self):
        policy = RandomPolicy(seed=0)
        seen = {
            policy.choose_local(O, LocalEvent.WRITE, WRITE_CHOICES)
            for _ in range(100)
        }
        assert seen == set(WRITE_CHOICES)

    def test_always_within_choices(self):
        policy = RandomPolicy(seed=3)
        for _ in range(50):
            assert (
                policy.choose_snoop(
                    S, BusEvent.CACHE_BROADCAST_WRITE, SNOOP_CHOICES
                )
                in SNOOP_CHOICES
            )


class TestRoundRobinPolicy:
    def test_cycles_in_order(self):
        policy = RoundRobinPolicy()
        picks = [
            policy.choose_local(O, LocalEvent.WRITE, WRITE_CHOICES)
            for _ in range(2 * len(WRITE_CHOICES))
        ]
        assert picks == list(WRITE_CHOICES) * 2

    def test_counters_are_per_cell(self):
        policy = RoundRobinPolicy()
        policy.choose_local(O, LocalEvent.WRITE, WRITE_CHOICES)
        # A different cell starts from its own beginning.
        chosen = policy.choose_snoop(
            S, BusEvent.CACHE_BROADCAST_WRITE, SNOOP_CHOICES
        )
        assert chosen is SNOOP_CHOICES[0]


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["preferred", "invalidate", "update", "random", "round-robin"]
    )
    def test_lookup(self, name):
        assert policy_by_name(name).name == name

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            policy_by_name("bogus")

    def test_random_accepts_seed(self):
        assert isinstance(policy_by_name("random", seed=9), RandomPolicy)

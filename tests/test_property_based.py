"""Property-based tests (hypothesis): randomized event sequences, policy
mixes, and data-structure invariants.

These generalize the scenario tests: *any* interleaving of reads, writes
and flushes across boards running *any* mix of class-member protocols must
preserve the MOESI invariants and read-coherence -- the probabilistic
companion to the exhaustive model checker."""

from hypothesis import given, settings, strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement import LruPolicy
from repro.core.states import LineState
from repro.core.transitions import MoesiClassTable
from repro.ext.linecross import split_reference
from repro.system.system import BoardSpec, System
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.trace import Op, ReferenceRecord, Trace

CLASS_MEMBERS = [
    "moesi",
    "moesi-invalidate",
    "moesi-update",
    "moesi-random",
    "moesi-round-robin",
    "berkeley",
    "dragon",
    "write-through",
    "write-through-alloc",
    "non-caching",
]

FOREIGN = ["illinois", "write-once", "firefly"]

#: (unit index, op, line index) events over a small address space.
_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.sampled_from(["read", "write", "flush"]),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=60,
)


def _run_events(system: System, events, line_size=32) -> None:
    units = list(system.controllers)
    for unit_index, op, line in events:
        unit = units[unit_index % len(units)]
        address = line * line_size
        if op == "read":
            system.read(unit, address)
        elif op == "write":
            system.write(unit, address)
        else:
            board = system.controllers[unit]
            if hasattr(board, "flush_line"):
                board.flush_line(line)


class TestRandomizedCoherence:
    @settings(max_examples=60, deadline=None)
    @given(
        protocols=st.lists(
            st.sampled_from(CLASS_MEMBERS), min_size=2, max_size=3
        ),
        events=_events,
    )
    def test_any_class_mix_any_interleaving(self, protocols, events):
        """System.check=True raises on any stale read or invariant break;
        completing the run IS the assertion."""
        boards = [
            BoardSpec(f"u{i}", name, num_sets=2, associativity=1)
            for i, name in enumerate(protocols)
        ]
        system = System(boards, check=True)
        _run_events(system, events)
        assert not system.check_coherence()

    @settings(max_examples=30, deadline=None)
    @given(
        protocol=st.sampled_from(FOREIGN),
        events=_events,
    )
    def test_homogeneous_foreign_protocols(self, protocol, events):
        system = System.homogeneous(
            protocol, 3, num_sets=2, associativity=1
        )
        _run_events(system, events)
        assert not system.check_coherence()

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        p_shared=st.floats(min_value=0.0, max_value=1.0),
        p_write=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_synthetic_workloads_clean(self, seed, p_shared, p_write):
        config = SyntheticConfig(
            processors=3,
            p_shared=p_shared,
            p_write=p_write,
            shared_blocks=4,
            private_blocks=4,
        )
        trace = SyntheticWorkload(config, seed=seed).trace(150)
        system = System.homogeneous(
            "moesi-random", 3, num_sets=2, associativity=2
        )
        system.run_trace(trace)
        assert not system.check_coherence()


class TestClassTableProperties:
    TABLE = MoesiClassTable()

    @settings(max_examples=100, deadline=None)
    @given(
        state=st.sampled_from(list(LineState)),
        event_index=st.integers(min_value=0, max_value=3),
    )
    def test_every_closure_action_is_permitted(self, state, event_index):
        """The closure is self-consistent: everything it generates passes
        its own membership predicate."""
        from repro.core.events import ALL_LOCAL_EVENTS

        event = ALL_LOCAL_EVENTS[event_index]
        for action in self.TABLE.local_action_set(state, event):
            assert self.TABLE.permits_local(state, event, action)

    @settings(max_examples=100, deadline=None)
    @given(
        state=st.sampled_from(list(LineState)),
        event_index=st.integers(min_value=0, max_value=5),
    )
    def test_snoop_closure_self_consistent(self, state, event_index):
        from repro.core.events import ALL_BUS_EVENTS

        event = ALL_BUS_EVENTS[event_index]
        for action in self.TABLE.snoop_action_set(state, event):
            assert self.TABLE.permits_snoop(state, event, action)

    @settings(max_examples=100, deadline=None)
    @given(
        state=st.sampled_from(
            [LineState.EXCLUSIVE, LineState.SHAREABLE, LineState.INVALID]
        ),
        event_index=st.integers(min_value=0, max_value=5),
    )
    def test_non_owners_never_intervene(self, state, event_index):
        from repro.core.events import ALL_BUS_EVENTS

        event = ALL_BUS_EVENTS[event_index]
        for action in self.TABLE.snoop_action_set(state, event):
            assert not action.response.di


class TestCacheProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1023), max_size=60
        )
    )
    def test_lookup_finds_last_fill(self, addresses):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        expected = {}
        for address in addresses:
            cache.fill(address, LineState.SHAREABLE, address)
            expected[address] = True
        # Any line still present must carry the value it was filled with.
        for line_address, line in cache.valid_lines():
            assert line.value == line_address

    @settings(max_examples=60, deadline=None)
    @given(
        touches=st.lists(
            st.integers(min_value=0, max_value=3), min_size=1, max_size=40
        )
    )
    def test_lru_victim_is_never_the_most_recent(self, touches):
        lru = LruPolicy(1, 4)
        for way in range(4):
            lru.fill(0, way)
        for way in touches:
            lru.touch(0, way)
        assert lru.victim(0, range(4)) != touches[-1]

    @settings(max_examples=60, deadline=None)
    @given(
        address=st.integers(min_value=0, max_value=10_000),
        size=st.integers(min_value=1, max_value=300),
        line_size=st.sampled_from([16, 32, 64]),
    )
    def test_split_reference_partitions_exactly(self, address, size, line_size):
        pieces = split_reference(address, size, line_size)
        assert sum(p.size for p in pieces) == size
        assert pieces[0].byte_address == address
        cursor = address
        for piece in pieces:
            assert piece.byte_address == cursor
            assert piece.line_address == cursor // line_size
            # No piece crosses a line boundary.
            assert (
                piece.byte_address // line_size
                == (piece.byte_address + piece.size - 1) // line_size
            )
            cursor += piece.size


class TestTraceProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        records=st.lists(
            st.tuples(
                st.sampled_from(["cpu0", "cpu1", "io"]),
                st.sampled_from(list(Op)),
                st.integers(min_value=0, max_value=2**32),
            ),
            max_size=40,
        )
    )
    def test_trace_text_roundtrip(self, records):
        trace = Trace(ReferenceRecord(u, o, a) for u, o, a in records)
        import io

        buffer = io.StringIO()
        trace.dump(buffer)
        parsed = Trace.parse(buffer.getvalue().splitlines())
        assert parsed.records == trace.records

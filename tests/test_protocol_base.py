"""The protocol abstractions: TableProtocol, table introspection, gaps."""

import pytest

from repro.core.actions import BusOp, LocalAction, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import (
    IllegalTransitionError,
    LocalContext,
    ProtocolGapError,
    SnoopContext,
    TableProtocol,
)
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

S, I = LineState.SHAREABLE, LineState.INVALID


class TinyProtocol(TableProtocol):
    """Two-state toy protocol for exercising the base class."""

    name = "Tiny"
    states = frozenset({S, I})
    local_transitions = {
        (I, LocalEvent.READ): LocalAction(
            S, MasterSignals(ca=True), BusOp.READ
        ),
        (S, LocalEvent.READ): LocalAction(S),
    }
    snoop_transitions = {
        (S, BusEvent.CACHE_READ): SnoopAction(S, SnoopResponse(ch=True)),
    }


class TinyExtended(TinyProtocol):
    name = "TinyExtended"
    snoop_default_to_class = True


class TestTableProtocol:
    def test_defined_cells_served(self):
        protocol = TinyProtocol()
        action = protocol.local_action(I, LocalEvent.READ)
        assert action.bus_op is BusOp.READ

    def test_missing_local_cell_raises(self):
        with pytest.raises(IllegalTransitionError, match="Tiny"):
            TinyProtocol().local_action(S, LocalEvent.WRITE)

    def test_missing_snoop_cell_raises_without_extension(self):
        with pytest.raises(IllegalTransitionError):
            TinyProtocol().snoop_action(S, BusEvent.UNCACHED_WRITE)

    def test_class_default_extension_fills_gaps(self):
        """snoop_default_to_class: the paper's 'extended to be
        compatible' mechanism."""
        action = TinyExtended().snoop_action(S, BusEvent.UNCACHED_WRITE)
        assert action.next_state is I  # the class's S col9 response

    def test_extension_does_not_shadow_own_cells(self):
        action = TinyExtended().snoop_action(S, BusEvent.CACHE_READ)
        assert action.response.ch is True

    def test_extension_still_raises_for_impossible_cells(self):
        """Cells the class itself marks '--' stay illegal."""
        from repro.core.states import LineState

        class WithM(TinyExtended):
            states = frozenset({LineState.MODIFIED, S, I})

        with pytest.raises(IllegalTransitionError):
            WithM().snoop_action(
                LineState.MODIFIED, BusEvent.CACHE_BROADCAST_WRITE
            )

    def test_cell_introspection(self):
        protocol = TinyProtocol()
        assert protocol.local_cell(S, LocalEvent.WRITE) == ()
        assert len(protocol.local_cell(I, LocalEvent.READ)) == 1

    def test_local_table_covers_declared_states(self):
        table = TinyProtocol().local_table()
        rows = {state for state, _ in table}
        assert rows == {S, I}

    def test_snoop_table_shape(self):
        table = TinyProtocol().snoop_table()
        assert len(table) == 2 * 6  # two states x six bus events


class TestContexts:
    def test_local_context_defaults(self):
        ctx = LocalContext()
        assert ctx.address == 0 and ctx.sequence == 0

    def test_snoop_context_recency_optional(self):
        assert SnoopContext().recency is None
        assert SnoopContext(recency=0.25).recency == 0.25

    def test_contexts_hashable(self):
        assert hash(LocalContext(1, 2)) == hash(LocalContext(1, 2))


class TestErrors:
    def test_illegal_transition_carries_details(self):
        error = IllegalTransitionError("P", S, LocalEvent.WRITE)
        assert error.protocol == "P"
        assert error.state is S
        assert "Write" in str(error)

    def test_gap_error_is_runtime_error(self):
        assert issubclass(ProtocolGapError, RuntimeError)

"""Berkeley protocol (Table 3) scenario tests."""

import pytest

from repro.analysis.paper_data import BERKELEY_TABLE3, canonical_cell
from repro.analysis.tables import diff_protocol_table, protocol_cells
from repro.protocols.berkeley import BerkeleyProtocol
from repro.core.states import LineState


class TestTableFidelity:
    def test_matches_paper_table3(self):
        diff = diff_protocol_table(3)
        assert diff.matches, diff.summary()

    def test_no_exclusive_state(self):
        assert LineState.EXCLUSIVE not in BerkeleyProtocol.states

    def test_does_not_need_busy(self):
        assert not BerkeleyProtocol.requires_busy


class TestScenarios:
    def test_read_miss_lands_shared_even_when_alone(self, mini):
        """No E state: the sole reader still takes S."""
        rig = mini("berkeley", "berkeley")
        rig[0].read(0)
        assert rig.states() == "S,I"

    def test_write_hit_shared_invalidates_peer(self, mini):
        """Berkeley is pure invalidation: an address-only CA,IM."""
        rig = mini("berkeley", "berkeley")
        rig[0].read(0)
        rig[1].read(0)
        writes_before = rig.memory.stats.writes
        rig[1].write(0, 3)
        assert rig.states() == "I,M"
        assert rig.memory.stats.writes == writes_before  # address-only
        assert rig[0].stats.invalidations_received == 1

    def test_dirty_read_creates_owner(self, mini):
        rig = mini("berkeley", "berkeley")
        rig[0].write(0, 2)
        rig[1].read(0)
        assert rig.states() == "O,S"
        assert rig[1].value_of(0) == 2

    def test_owner_supplies_without_memory_update(self, mini):
        """Berkeley ownership: memory stays stale across the supply."""
        rig = mini("berkeley", "berkeley")
        rig[0].write(0, 2)
        rig[1].read(0)
        assert rig.memory.peek(0) == 0  # still stale; owner intervened

    def test_owner_write_invalidates_and_takes_m(self, mini):
        rig = mini("berkeley", "berkeley")
        rig[0].write(0, 2)
        rig[1].read(0)      # O,S
        rig[0].write(0, 3)  # address-only invalidate
        assert rig.states() == "M,I"

    def test_flush_owner_updates_memory(self, mini):
        rig = mini("berkeley", "berkeley")
        rig[0].write(0, 2)
        rig[0].flush_line(0)
        assert rig.memory.peek(0) == 2

    def test_write_miss_against_owner(self, mini):
        rig = mini("berkeley", "berkeley")
        rig[0].write(0, 1)
        rig[1].write(0, 2)
        assert rig.states() == "I,M"
        assert rig[1].read(0) == 2

    def test_mixed_with_moesi_stays_coherent(self, mini):
        """Berkeley extends with class defaults, so it survives MOESI's
        broadcast writes (the extension the paper calls for)."""
        rig = mini("berkeley", "moesi")
        rig[0].read(0)
        rig[1].read(0)
        rig[1].write(0, 9)   # MOESI broadcasts; Berkeley's class-default
        assert rig[0].read(0) == 9


class TestTable3Golden:
    """Every cell of the paper's Table 3, one assertion per cell.

    Exhaustive and parametrized (including the BS/abort rows), so a
    single drifted cell fails with its own (state, column) id instead of
    being buried in a whole-table diff.
    """

    _columns = ("Read", "Write", 5, 6)
    _cells = protocol_cells(BerkeleyProtocol(), _columns)

    @pytest.mark.parametrize(
        "state,column",
        sorted(BERKELEY_TABLE3, key=lambda key: (key[0], str(key[1]))),
        ids=lambda value: str(value),
    )
    def test_cell_matches_paper(self, state, column):
        paper = [canonical_cell(c) for c in BERKELEY_TABLE3[(state, column)]]
        ours = [canonical_cell(c) for c in self._cells[(state, column)]]
        assert ours == paper, (
            f"Table 3 cell ({state}, {column}): "
            f"emitted {ours} != paper {paper}"
        )

    def test_reference_is_exhaustive(self):
        """The paper reference covers every (state, column) the protocol
        itself defines -- no cell escapes the golden comparison."""
        assert set(BERKELEY_TABLE3) == set(self._cells)

"""Dragon protocol (Table 4) scenario tests."""

import pytest

from repro.analysis.paper_data import DRAGON_TABLE4, canonical_cell
from repro.analysis.tables import diff_protocol_table, protocol_cells
from repro.protocols.dragon import DragonProtocol
from repro.core.states import LineState


class TestTableFidelity:
    def test_matches_paper_table4(self):
        diff = diff_protocol_table(4)
        assert diff.matches, diff.summary()

    def test_has_all_five_states(self):
        assert DragonProtocol.states == frozenset(LineState)

    def test_no_busy_needed(self):
        assert not DragonProtocol.requires_busy


class TestUpdateSemantics:
    def test_never_invalidates_peers(self, mini):
        rig = mini("dragon", "dragon")
        rig[0].read(0)
        rig[1].read(0)
        rig[1].write(0, 5)
        assert rig.states() == "S,O"
        assert rig[0].stats.invalidations_received == 0
        assert rig[0].value_of(0) == 5

    def test_write_miss_is_two_transactions(self, mini):
        """Dragon's I-write is Read>Write."""
        rig = mini("dragon", "dragon")
        rig[0].write(0, 5)
        # Read landed E (nobody else), then the write silently took M.
        assert rig.states() == "M,I"
        assert rig[0].stats.bus_transactions == 1  # only the read needed bus

    def test_write_miss_with_sharer_broadcasts(self, mini):
        rig = mini("dragon", "dragon")
        rig[0].read(0)           # E
        rig[1].write(0, 7)       # read (E->S, CH) then broadcast write
        assert rig.states() == "S,O"
        assert rig[0].value_of(0) == 7

    def test_futurebus_updates_memory_on_broadcast(self, mini):
        """The paper's noted divergence: Futurebus broadcast writes also
        update main memory; "extra memory updates cause no
        incompatibility"."""
        rig = mini("dragon", "dragon")
        rig[0].read(0)
        rig[1].read(0)
        rig[1].write(0, 5)
        assert rig.memory.peek(0) == 5  # true Dragon would still have 0

    def test_dirty_sharing_keeps_owner(self, mini):
        rig = mini("dragon", "dragon", "dragon")
        rig[0].write(0, 1)       # M (via Read>Write, silent write)
        rig[1].read(0)           # O,S
        rig[2].read(0)
        assert rig.states() == "O,S,S"
        rig[0].write(0, 2)       # owner broadcasts, everyone updates
        assert rig[1].value_of(0) == 2 and rig[2].value_of(0) == 2
        assert rig.states() == "O,S,S"

    def test_exclusive_write_is_silent(self, mini):
        rig = mini("dragon", "dragon")
        rig[0].read(0)
        before = rig[0].stats.bus_transactions
        rig[0].write(0, 1)
        assert rig[0].stats.bus_transactions == before
        assert rig.states() == "M,I"

    def test_flush_owned_writes_back(self, mini):
        rig = mini("dragon", "dragon")
        rig[0].read(0)
        rig[1].read(0)
        rig[1].write(0, 5)       # S,O
        rig[1].flush_line(0)
        assert rig.memory.peek(0) == 5
        assert rig[0].read(0) == 5

    def test_mixed_with_berkeley(self, mini):
        """Both are class members; any interleaving stays coherent."""
        rig = mini("dragon", "berkeley")
        rig[0].read(0)
        rig[1].write(0, 1)       # Berkeley invalidate-style
        assert rig[0].read(0) == 1
        rig[0].write(0, 2)       # Dragon broadcast-style
        assert rig[1].read(0) == 2


class TestTable4Golden:
    """Every cell of the paper's Table 4, one assertion per cell.

    Exhaustive and parametrized (including the BS/abort rows), so a
    single drifted cell fails with its own (state, column) id instead of
    being buried in a whole-table diff.
    """

    _columns = ("Read", "Write", 5, 8)
    _cells = protocol_cells(DragonProtocol(), _columns)

    @pytest.mark.parametrize(
        "state,column",
        sorted(DRAGON_TABLE4, key=lambda key: (key[0], str(key[1]))),
        ids=lambda value: str(value),
    )
    def test_cell_matches_paper(self, state, column):
        paper = [canonical_cell(c) for c in DRAGON_TABLE4[(state, column)]]
        ours = [canonical_cell(c) for c in self._cells[(state, column)]]
        assert ours == paper, (
            f"Table 4 cell ({state}, {column}): "
            f"emitted {ours} != paper {paper}"
        )

    def test_reference_is_exhaustive(self):
        """The paper reference covers every (state, column) the protocol
        itself defines -- no cell escapes the golden comparison."""
        assert set(DRAGON_TABLE4) == set(self._cells)

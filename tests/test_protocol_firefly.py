"""Firefly protocol (Table 7) scenario tests."""

import pytest

from repro.analysis.paper_data import FIREFLY_TABLE7, canonical_cell
from repro.analysis.tables import diff_protocol_table, protocol_cells
from repro.core.states import LineState
from repro.protocols.firefly import FireflyProtocol


class TestTableFidelity:
    def test_matches_paper_table7(self):
        diff = diff_protocol_table(7)
        assert diff.matches, diff.summary()

    def test_requires_busy(self):
        assert FireflyProtocol.requires_busy


class TestScenarios:
    def test_dirty_read_pushes_then_lands_shared_via_e(self, mini):
        """Table 7's subtle two-step: the M holder pushes and takes E;
        the *retried* read then snoops it in E and downgrades to S."""
        rig = mini("firefly", "firefly")
        rig[0].read(0)
        rig[0].write(0, 4)          # E -> M silent
        value = rig[1].read(0)
        assert value == 4
        assert rig.states() == "S,S"
        assert rig.memory.peek(0) == 4
        assert rig[0].stats.abort_pushes == 1

    def test_shared_write_broadcasts_and_stays_clean(self, mini):
        """Firefly's S-write lands CH:S/E (not O/M): the broadcast also
        updated memory, so the writer holds clean data."""
        rig = mini("firefly", "firefly")
        rig[0].read(0)
        rig[1].read(0)              # S,S
        rig[1].write(0, 5)
        assert rig.states() == "S,S"
        assert rig.memory.peek(0) == 5
        assert rig[0].value_of(0) == 5

    def test_shared_write_alone_lands_exclusive(self, mini):
        """When no other cache retains the line, CH:S/E resolves E."""
        rig = mini("firefly", "firefly")
        rig[0].read(0)
        rig[1].read(0)
        rig[0].flush_line(0)        # drop u0's copy silently (clean)
        rig[1].write(0, 5)          # broadcast, no CH heard
        assert rig[1].state_of(0).letter == "E"
        assert rig.memory.peek(0) == 5

    def test_never_invalidates(self, mini):
        rig = mini("firefly", "firefly", "firefly")
        for unit in rig.units:
            unit.read(0)
        rig[0].write(0, 9)
        assert rig.states() == "S,S,S"
        for unit in rig.units:
            assert unit.stats.invalidations_received == 0
            assert unit.value_of(0) == 9

    def test_write_miss_is_read_then_write(self, mini):
        rig = mini("firefly", "firefly")
        rig[0].read(0)              # E
        rig[1].write(0, 2)          # Read>Write: read (S,S), then bcast
        assert rig.states() == "S,S"
        assert rig[0].value_of(0) == 2

    def test_no_owned_state_memory_always_fresh_when_shared(self, mini):
        rig = mini("firefly", "firefly")
        rig[0].write(0, 1)          # via Read>Write: E then silent M? no --
        # I-write is Read>Write; the read lands E (alone), then E-write is
        # a silent upgrade to M.
        assert rig[0].state_of(0).letter == "M"
        rig[1].read(0)              # abort-push via E, retry -> S,S
        assert rig.memory.peek(0) == 1
        assert rig.states() == "S,S"


class TestTable7Golden:
    """Every cell of the paper's Table 7, one assertion per cell.

    Exhaustive and parametrized (including the BS/abort rows), so a
    single drifted cell fails with its own (state, column) id instead of
    being buried in a whole-table diff.
    """

    _columns = ("Read", "Write", 5, 8)
    _cells = protocol_cells(FireflyProtocol(), _columns)

    @pytest.mark.parametrize(
        "state,column",
        sorted(FIREFLY_TABLE7, key=lambda key: (key[0], str(key[1]))),
        ids=lambda value: str(value),
    )
    def test_cell_matches_paper(self, state, column):
        paper = [canonical_cell(c) for c in FIREFLY_TABLE7[(state, column)]]
        ours = [canonical_cell(c) for c in self._cells[(state, column)]]
        assert ours == paper, (
            f"Table 7 cell ({state}, {column}): "
            f"emitted {ours} != paper {paper}"
        )

    def test_reference_is_exhaustive(self):
        """The paper reference covers every (state, column) the protocol
        itself defines -- no cell escapes the golden comparison."""
        assert set(FIREFLY_TABLE7) == set(self._cells)

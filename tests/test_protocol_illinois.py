"""Illinois/MESI protocol (Table 6) scenario tests."""

import pytest

from repro.analysis.paper_data import ILLINOIS_TABLE6, canonical_cell
from repro.analysis.tables import diff_protocol_table, protocol_cells
from repro.core.states import LineState
from repro.protocols.illinois import IllinoisProtocol


class TestTableFidelity:
    def test_matches_paper_table6(self):
        diff = diff_protocol_table(6)
        assert diff.matches, diff.summary()

    def test_requires_busy(self):
        assert IllinoisProtocol.requires_busy

    def test_mesi_state_set(self):
        assert IllinoisProtocol.states == frozenset(
            {
                LineState.MODIFIED,
                LineState.EXCLUSIVE,
                LineState.SHAREABLE,
                LineState.INVALID,
            }
        )


class TestScenarios:
    def test_read_miss_exclusive_when_alone(self, mini):
        rig = mini("illinois", "illinois")
        rig[0].read(0)
        assert rig.states() == "E,I"

    def test_read_miss_shared_when_cached_elsewhere(self, mini):
        rig = mini("illinois", "illinois")
        rig[0].read(0)
        rig[1].read(0)
        assert rig.states() == "S,S"

    def test_dirty_supply_goes_through_memory(self, mini):
        """Paper: memory must be updated when a dirty block passes between
        caches -- realized as BS abort + push + retry."""
        rig = mini("illinois", "illinois")
        rig[0].write(0, 6)               # M
        value = rig[1].read(0)
        assert value == 6
        assert rig.memory.peek(0) == 6   # pushed before the retry
        assert rig.states() == "S,S"
        assert rig[0].stats.abort_pushes == 1

    def test_write_miss_against_dirty_owner(self, mini):
        """Illinois aborts on column 6 too; after the push the retried
        read-for-modify invalidates the old holder."""
        rig = mini("illinois", "illinois")
        rig[0].write(0, 1)
        rig[1].write(0, 2)
        assert rig.states() == "I,M"
        assert rig.memory.peek(0) == 1   # the push from the abort
        assert rig[1].read(0) == 2

    def test_shared_write_is_address_only_invalidate(self, mini):
        rig = mini("illinois", "illinois")
        rig[0].read(0)
        rig[1].read(0)
        writes_before = rig.memory.stats.writes
        rig[1].write(0, 2)
        assert rig.states() == "I,M"
        assert rig.memory.stats.writes == writes_before

    def test_shared_state_is_memory_consistent(self, mini):
        """Illinois S means consistent with memory (section 4.4) --
        invariantly true in a homogeneous Illinois system."""
        rig = mini("illinois", "illinois")
        rig[0].write(0, 1)
        rig[1].read(0)
        # Both S; memory must match.
        assert rig.states() == "S,S"
        assert rig.memory.peek(0) == 1

    def test_no_intervention_ever(self, mini):
        """Only memory (post-push) supplies data; S/E never respond."""
        rig = mini("illinois", "illinois", "illinois")
        rig[0].write(0, 1)
        rig[1].read(0)
        rig[2].read(0)
        assert rig[0].stats.interventions_supplied == 0
        assert rig[1].stats.interventions_supplied == 0

    def test_exclusive_silent_upgrade(self, mini):
        rig = mini("illinois", "illinois")
        rig[0].read(0)
        before = rig[0].stats.bus_transactions
        rig[0].write(0, 3)
        assert rig[0].stats.bus_transactions == before
        assert rig[0].state_of(0).letter == "M"


class TestTable6Golden:
    """Every cell of the paper's Table 6, one assertion per cell.

    Exhaustive and parametrized (including the BS/abort rows), so a
    single drifted cell fails with its own (state, column) id instead of
    being buried in a whole-table diff.
    """

    _columns = ("Read", "Write", 5, 6)
    _cells = protocol_cells(IllinoisProtocol(), _columns)

    @pytest.mark.parametrize(
        "state,column",
        sorted(ILLINOIS_TABLE6, key=lambda key: (key[0], str(key[1]))),
        ids=lambda value: str(value),
    )
    def test_cell_matches_paper(self, state, column):
        paper = [canonical_cell(c) for c in ILLINOIS_TABLE6[(state, column)]]
        ours = [canonical_cell(c) for c in self._cells[(state, column)]]
        assert ours == paper, (
            f"Table 6 cell ({state}, {column}): "
            f"emitted {ours} != paper {paper}"
        )

    def test_reference_is_exhaustive(self):
        """The paper reference covers every (state, column) the protocol
        itself defines -- no cell escapes the golden comparison."""
        assert set(ILLINOIS_TABLE6) == set(self._cells)

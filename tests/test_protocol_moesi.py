"""Scenario tests for the full MOESI protocol on the live machinery.

Each test walks the states of Tables 1-2 through real bus transactions
and asserts the resulting state at every participant (experiment T1/T2's
dynamic counterpart)."""

import pytest

from repro.core.states import LineState

M, O, E, S, I = "M", "O", "E", "S", "I"


class TestReadMissStates:
    def test_first_reader_gets_exclusive(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].read(0)
        assert rig.states() == "E,I"

    def test_second_reader_shares(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].read(0)
        rig[1].read(0)
        assert rig.states() == "S,S"

    def test_third_reader_shares_too(self, mini):
        rig = mini("moesi", "moesi", "moesi")
        for unit in rig.units:
            unit.read(0)
        assert rig.states() == "S,S,S"

    def test_read_from_owner_downgrades_to_owned(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].write(0, 1)  # write miss -> M
        rig[1].read(0)
        assert rig.states() == "O,S"
        assert rig[1].value_of(0) == 1


class TestWriteStates:
    def test_write_miss_takes_modified(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].write(0, 5)
        assert rig.states() == "M,I"
        assert rig[0].value_of(0) == 5

    def test_write_hit_exclusive_silent_upgrade(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].read(0)
        before = rig[0].stats.bus_transactions
        rig[0].write(0, 5)
        assert rig.states() == "M,I"
        assert rig[0].stats.bus_transactions == before  # silent

    def test_write_to_shared_broadcasts_and_updates_peer(self, mini):
        """Preferred policy: CA,IM,BC write; peer SL-connects."""
        rig = mini("moesi", "moesi")
        rig[0].read(0)
        rig[1].read(0)
        rig[1].write(0, 9)
        assert rig.states() == "S,O"
        assert rig[0].value_of(0) == 9
        assert rig[0].stats.updates_received == 1

    def test_write_to_shared_alone_takes_m(self, mini):
        """CH:O/M resolves to M when no other cache retains a copy."""
        rig = mini("moesi", "moesi")
        rig[0].read(0)
        rig[1].read(0)
        rig[1].cache.ways_of(0)[  # crude invalidation of u1's copy
            rig[1].cache.lookup(0)[1]
        ].invalidate()
        rig[0].write(0, 3)
        assert rig[0].state_of(0).letter == "M"

    def test_owner_keeps_writing_broadcast(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].write(0, 1)
        rig[1].read(0)          # 0: O, 1: S
        rig[0].write(0, 2)      # broadcast, peer retains
        assert rig.states() == "O,S"
        assert rig[1].read(0) == 2


class TestWriteBackAndEviction:
    def test_flush_owned_writes_memory(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].write(0, 7)
        # The broadcast-on-miss policy is read-for-ownership; memory still
        # has the initial value.
        assert rig.memory.peek(0) == 0
        rig[0].flush_line(0)
        assert rig.memory.peek(0) == 7
        assert rig.states() == "I,I"

    def test_flush_clean_is_silent(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].read(0)
        before = rig.memory.stats.writes
        rig[0].flush_line(0)
        assert rig.memory.stats.writes == before

    def test_clean_line_pass_keeps_copy(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].write(0, 7)
        rig[0].clean_line(0)
        assert rig[0].state_of(0).letter == "E"
        assert rig.memory.peek(0) == 7

    def test_pass_from_owned_resolves_by_ch(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].write(0, 1)
        rig[1].read(0)          # O,S
        rig[0].clean_line(0)    # push; u1 retains -> CH -> S
        assert rig.states() == "S,S"
        assert rig.memory.peek(0) == 1

    def test_capacity_eviction_writes_back(self, mini):
        rig = mini("moesi", num_sets=1, associativity=1)
        rig[0].write(0, 1)          # line 0 in the only way
        rig[0].write(32, 2)         # evicts line 0 -> write-back
        assert rig.memory.peek(0) == 1
        assert rig[0].state_of(1).letter == "M"
        assert rig[0].stats.evictions == 1


class TestIntervention:
    def test_owner_supplies_not_memory(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].write(0, 4)
        reads_before = rig.memory.stats.reads
        value = rig[1].read(0)
        assert value == 4
        assert rig.memory.stats.reads == reads_before  # DI preempted
        assert rig[0].stats.interventions_supplied == 1

    def test_memory_supplies_for_clean_lines(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].read(0)
        before = rig.memory.stats.reads
        rig[1].read(0)
        assert rig.memory.stats.reads == before + 1

    def test_write_miss_invalidates_owner(self, mini):
        rig = mini("moesi", "moesi")
        rig[0].write(0, 1)
        rig[1].write(0, 2)   # read-for-ownership: owner supplies + dies
        assert rig.states() == "I,M"
        assert rig[1].value_of(0) == 2


class TestStatsBookkeeping:
    def test_hits_and_misses(self, mini):
        rig = mini("moesi")
        rig[0].read(0)
        rig[0].read(0)
        rig[0].write(0, 1)
        assert rig[0].stats.read_misses == 1
        assert rig[0].stats.read_hits == 1
        assert rig[0].stats.write_hits == 1

    def test_invalidation_received_on_write_miss(self, mini):
        """A write *miss* is a read-for-ownership (column 6): holders are
        invalidated, not updated."""
        rig = mini("moesi", "moesi")
        rig[0].read(0)
        rig[1].write(0, 1)
        assert rig[0].stats.invalidations_received == 1
        assert rig[0].stats.updates_received == 0

    def test_update_received_on_shared_write_hit(self, mini):
        """A write *hit* on a shared line broadcasts (column 8): holders
        update."""
        rig = mini("moesi", "moesi")
        rig[0].read(0)
        rig[1].read(0)
        rig[1].write(0, 1)
        assert rig[0].stats.updates_received == 1
        assert rig[0].stats.invalidations_received == 0

"""Non-caching masters (the "**" member): I/O processors etc."""

import pytest

from repro.core.signals import SnoopResponse
from repro.core.validation import check_membership
from repro.protocols.noncaching import NonCachingProtocol


class TestDefinition:
    def test_full_member(self):
        assert check_membership(NonCachingProtocol()).is_full_member

    def test_never_responds_to_bus_events(self):
        protocol = NonCachingProtocol()
        from repro.core.events import BusEvent
        from repro.core.states import LineState

        for event in BusEvent:
            action = protocol.snoop_action(LineState.INVALID, event)
            assert action.response == SnoopResponse.NONE


class TestScenarios:
    def test_read_returns_current_data_from_memory(self, mini):
        rig = mini("non-caching", "moesi")
        rig[1].read(0)
        assert rig[0].read(0) == 0

    def test_read_served_by_owner_when_dirty(self, mini):
        rig = mini("non-caching", "moesi")
        rig[1].write(0, 7)              # owner M, memory stale
        assert rig[0].read(0) == 7      # DI supply (column 7)
        assert rig[1].state_of(0).letter == "M"  # owner keeps M

    def test_write_captured_by_owner(self, mini):
        """Column 9: the owner captures; memory is not updated."""
        rig = mini("non-caching", "moesi")
        rig[1].write(0, 1)
        rig[0].write(0, 2)
        assert rig[1].value_of(0) == 2
        assert rig.memory.peek(0) == 0

    def test_write_reaches_memory_when_unowned(self, mini):
        rig = mini("non-caching", "moesi")
        rig[0].write(0, 5)
        assert rig.memory.peek(0) == 5

    def test_write_invalidates_unowned_copies(self, mini):
        rig = mini("non-caching", "moesi", "moesi")
        rig[1].read(0)
        rig[2].read(0)                  # S,S
        rig[0].write(0, 3)              # column 9: both invalidate
        assert rig[1].state_of(0).letter == "I"
        assert rig[2].state_of(0).letter == "I"
        assert rig[1].read(0) == 3

    def test_broadcast_flavor_updates_copies(self, mini):
        rig = mini("non-caching-bc", "moesi", "moesi")
        rig[1].read(0)
        rig[2].read(0)
        rig[0].write(0, 3)              # column 10: holders may update
        assert rig[1].value_of(0) == 3
        assert rig[2].value_of(0) == 3

    def test_retains_nothing(self, mini):
        rig = mini("non-caching", "moesi")
        rig[0].read(0)
        rig[0].write(0, 1)
        assert list(rig[0].cached_lines()) == []

    def test_every_access_uses_the_bus(self, mini):
        rig = mini("non-caching", "moesi")
        for i in range(5):
            rig[0].read(0)
        assert rig[0].stats.bus_transactions == 5

"""Write-Once protocol (Table 5) scenario tests: Goodman's scheme with
the Futurebus BS-abort adaptation."""

import pytest

from repro.analysis.paper_data import WRITE_ONCE_TABLE5, canonical_cell
from repro.analysis.tables import diff_protocol_table, protocol_cells
from repro.core.states import LineState
from repro.protocols.write_once import WriteOnceProtocol


class TestTableFidelity:
    def test_matches_paper_table5(self):
        diff = diff_protocol_table(5)
        assert diff.matches, diff.summary()

    def test_requires_busy(self):
        assert WriteOnceProtocol.requires_busy

    def test_no_owned_state(self):
        assert LineState.OWNED not in WriteOnceProtocol.states


class TestWriteOnceSemantics:
    def test_first_write_goes_through_to_memory(self, mini):
        """The eponymous behaviour: S-write writes through, lands E."""
        rig = mini("write-once", "write-once")
        rig[0].read(0)            # S
        rig[0].write(0, 1)
        assert rig[0].state_of(0).letter == "E"
        assert rig.memory.peek(0) == 1

    def test_second_write_stays_local(self, mini):
        rig = mini("write-once", "write-once")
        rig[0].read(0)
        rig[0].write(0, 1)        # E (wrote once)
        rig[0].write(0, 2)        # silent E -> M
        assert rig[0].state_of(0).letter == "M"
        assert rig.memory.peek(0) == 1  # memory only has the first write

    def test_first_write_invalidates_sharers(self, mini):
        rig = mini("write-once", "write-once")
        rig[0].read(0)
        rig[1].read(0)            # S,S
        rig[1].write(0, 1)        # write-through + invalidate (col 6)
        assert rig.states() == "I,E"

    def test_read_of_dirty_line_aborts_and_pushes(self, mini):
        """M holder asserts BS, pushes, the retried read hits memory."""
        rig = mini("write-once", "write-once")
        rig[0].read(0)
        rig[0].write(0, 1)
        rig[0].write(0, 2)        # M
        value = rig[1].read(0)
        assert value == 2
        assert rig.states() == "S,S"
        assert rig.memory.peek(0) == 2
        assert rig[0].stats.abort_pushes == 1

    def test_write_miss_supplies_and_invalidates(self, mini):
        """Preferred (M, col 6) reading: "I,DI" -- supply directly."""
        rig = mini("write-once", "write-once")
        rig[0].read(0); rig[0].write(0, 1); rig[0].write(0, 2)  # M
        rig[1].write(0, 3)        # M,CA,IM,R against the owner
        assert rig.states() == "I,M"
        assert rig[1].read(0) == 3

    def test_homogeneous_memory_always_fresh_for_shared(self, mini):
        """Write-Once's S state implies memory consistency -- holds in a
        homogeneous system."""
        rig = mini("write-once", "write-once")
        rig[0].read(0)
        rig[0].write(0, 1)
        rig[1].read(0)            # E downgrades to S
        assert rig.states() == "S,S"
        assert rig.memory.peek(0) == 1

    def test_flush_dirty_writes_back(self, mini):
        rig = mini("write-once", "write-once")
        rig[0].read(0); rig[0].write(0, 1); rig[0].write(0, 2)
        rig[0].flush_line(0)
        assert rig.memory.peek(0) == 2


class TestTable5Golden:
    """Every cell of the paper's Table 5, one assertion per cell.

    Exhaustive and parametrized (including the BS/abort rows), so a
    single drifted cell fails with its own (state, column) id instead of
    being buried in a whole-table diff.
    """

    _columns = ("Read", "Write", 5, 6)
    _cells = protocol_cells(WriteOnceProtocol(), _columns)

    @pytest.mark.parametrize(
        "state,column",
        sorted(WRITE_ONCE_TABLE5, key=lambda key: (key[0], str(key[1]))),
        ids=lambda value: str(value),
    )
    def test_cell_matches_paper(self, state, column):
        paper = [canonical_cell(c) for c in WRITE_ONCE_TABLE5[(state, column)]]
        ours = [canonical_cell(c) for c in self._cells[(state, column)]]
        assert ours == paper, (
            f"Table 5 cell ({state}, {column}): "
            f"emitted {ours} != paper {paper}"
        )

    def test_reference_is_exhaustive(self):
        """The paper reference covers every (state, column) the protocol
        itself defines -- no cell escapes the golden comparison."""
        assert set(WRITE_ONCE_TABLE5) == set(self._cells)

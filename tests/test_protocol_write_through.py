"""Write-through cache (the class's "*" member, statements 6-8)."""

import pytest

from repro.core.states import LineState
from repro.core.validation import check_membership
from repro.protocols.write_through import WriteThroughProtocol


class TestDefinition:
    def test_two_states_only(self):
        assert WriteThroughProtocol().states == frozenset(
            {LineState.SHAREABLE, LineState.INVALID}
        )

    def test_full_member_in_all_configurations(self):
        for kwargs in (
            {},
            {"broadcast_writes": False},
            {"write_allocate": True},
            {"update_on_broadcast": False},
        ):
            report = check_membership(WriteThroughProtocol(**kwargs))
            assert report.is_full_member, report.summary()

    def test_name_reflects_flavor(self):
        assert "noBC" in WriteThroughProtocol(broadcast_writes=False).name


class TestWriteThroughSemantics:
    def test_every_write_reaches_memory(self, mini):
        rig = mini("write-through", "write-through")
        rig[0].read(0)
        rig[0].write(0, 1)
        rig[0].write(0, 2)
        rig[0].write(0, 3)
        assert rig.memory.peek(0) == 3
        assert rig.memory.stats.writes == 3

    def test_write_keeps_line_valid(self, mini):
        rig = mini("write-through", "write-through")
        rig[0].read(0)
        rig[0].write(0, 1)
        assert rig[0].state_of(0).letter == "S"

    def test_no_allocate_on_write_miss(self, mini):
        rig = mini("write-through", "write-through")
        rig[0].write(0, 1)
        assert rig[0].state_of(0).letter == "I"
        assert rig.memory.peek(0) == 1

    def test_broadcast_write_updates_peer(self, mini):
        """Default flavor broadcasts: other caches may update (col 10)."""
        rig = mini("write-through", "write-through")
        rig[0].read(0)
        rig[1].read(0)
        rig[1].write(0, 2)
        assert rig[0].value_of(0) == 2
        assert rig[0].stats.updates_received == 1

    def test_read_miss_asserts_ca_and_lands_valid(self, mini):
        rig = mini("write-through", "write-through")
        rig[0].read(0)
        rig[1].read(0)
        assert rig.states() == "S,S"

    def test_never_dirty_eviction_silent(self, mini):
        rig = mini("write-through", num_sets=1, associativity=1)
        rig[0].read(0)
        rig[0].write(0, 1)
        writes_before = rig.memory.stats.writes
        rig[0].read(32)   # evicts line 0
        assert rig.memory.stats.writes == writes_before  # no write-back

    def test_against_moesi_owner_write_is_captured(self, mini):
        """A WT write past the cache against a MOESI owner: with
        broadcast, the owner SL-updates; memory updates too."""
        rig = mini("write-through", "moesi")
        rig[1].write(0, 1)          # MOESI owner M
        rig[0].read(0)              # WT shares; owner -> O
        rig[0].write(0, 2)
        assert rig[1].value_of(0) == 2
        assert rig.memory.peek(0) == 2
        assert rig[0].read(0) == 2


class TestNonBroadcastFlavor:
    def test_peers_invalidated_instead_of_updated(self, mini):
        rig = mini("write-through-noalloc-nobc", "write-through-noalloc-nobc")
        rig[0].read(0)
        rig[1].read(0)
        rig[1].write(0, 2)          # ~CA,IM,~BC: column 9
        assert rig[0].state_of(0).letter == "I"
        assert rig[1].read(0) == 2

    def test_capture_by_owner_without_memory_update(self, mini):
        """Column 9 against an owner: DI captures; memory NOT updated."""
        rig = mini("write-through-noalloc-nobc", "moesi")
        rig[1].write(0, 1)          # owner M, memory stale
        writes_before = rig.memory.stats.writes
        rig[0].write(0, 2)          # non-broadcast write past the cache
        assert rig[1].value_of(0) == 2
        assert rig.memory.stats.writes == writes_before
        assert rig[1].stats.writes_captured == 1


class TestAllocateFlavor:
    def test_write_miss_allocates_via_read(self, mini):
        rig = mini("write-through-alloc", "write-through-alloc")
        rig[0].write(0, 1)
        assert rig[0].state_of(0).letter == "S"
        assert rig.memory.peek(0) == 1
        # Subsequent write hits.
        rig[0].write(0, 2)
        assert rig[0].stats.write_hits == 1

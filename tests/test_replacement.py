"""Replacement policies, including the recency exposure the Puzak
refinement relies on."""

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    replacement_by_name,
)


class TestLru:
    def test_victim_is_least_recently_used(self):
        lru = LruPolicy(1, 4)
        for way in (0, 1, 2, 3):
            lru.fill(0, way)
        lru.touch(0, 0)  # 0 becomes MRU; 1 is now LRU
        assert lru.victim(0, range(4)) == 1

    def test_touch_protects(self):
        lru = LruPolicy(1, 2)
        lru.fill(0, 0)
        lru.fill(0, 1)
        lru.touch(0, 0)
        assert lru.victim(0, range(2)) == 1

    def test_candidates_respected(self):
        lru = LruPolicy(1, 4)
        for way in range(4):
            lru.fill(0, way)
        # way 0 is LRU overall, but only 2 and 3 are candidates.
        assert lru.victim(0, [2, 3]) == 2

    def test_recency_normalized(self):
        lru = LruPolicy(1, 3)
        for way in (0, 1, 2):
            lru.fill(0, way)
        # Order (MRU..LRU): 2, 1, 0.
        assert lru.recency(0, 2) == 0.0
        assert lru.recency(0, 1) == 0.5
        assert lru.recency(0, 0) == 1.0

    def test_single_way_recency_zero(self):
        lru = LruPolicy(1, 1)
        assert lru.recency(0, 0) == 0.0

    def test_sets_independent(self):
        lru = LruPolicy(2, 2)
        lru.fill(0, 1)
        assert lru.victim(1, range(2)) == 1  # set 1 untouched order

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError):
            LruPolicy(1, 2).victim(0, [])


class TestFifo:
    def test_touch_does_not_protect(self):
        fifo = FifoPolicy(1, 2)
        fifo.fill(0, 0)
        fifo.fill(0, 1)
        fifo.touch(0, 0)  # irrelevant for FIFO
        assert fifo.victim(0, range(2)) == 0

    def test_fill_order_respected(self):
        fifo = FifoPolicy(1, 3)
        for way in (2, 0, 1):
            fifo.fill(0, way)
        assert fifo.victim(0, range(3)) == 2


class TestRandom:
    def test_deterministic_given_seed(self):
        a = RandomPolicy(1, 4, seed=1)
        b = RandomPolicy(1, 4, seed=1)
        picks_a = [a.victim(0, range(4)) for _ in range(10)]
        picks_b = [b.victim(0, range(4)) for _ in range(10)]
        assert picks_a == picks_b

    def test_stays_within_candidates(self):
        policy = RandomPolicy(1, 4, seed=2)
        for _ in range(20):
            assert policy.victim(0, [1, 3]) in (1, 3)

    def test_neutral_recency(self):
        assert RandomPolicy(1, 2).recency(0, 0) == 0.5


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LruPolicy), ("fifo", FifoPolicy), ("random", RandomPolicy),
    ])
    def test_by_name(self, name, cls):
        assert isinstance(replacement_by_name(name, 4, 2), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            replacement_by_name("plru", 4, 2)

"""The ASCII report formatter."""

from repro.analysis.report import format_rows


class TestFormatRows:
    def test_empty(self):
        assert format_rows([]) == "(no rows)"
        assert format_rows([], title="T") == "T"

    def test_alignment(self):
        text = format_rows([{"a": 1, "bb": "x"}, {"a": 222, "bb": "yyyy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        # All rows have equal visual width.
        assert len({len(line) for line in lines}) == 1

    def test_title_first(self):
        text = format_rows([{"a": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_explicit_column_order_and_subset(self):
        rows = [{"x": 1, "y": 2, "z": 3}]
        text = format_rows(rows, columns=["z", "x"])
        header = text.splitlines()[0]
        assert header.index("z") < header.index("x")
        assert "y" not in header

    def test_missing_keys_blank(self):
        text = format_rows([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "1" in text and "2" in text

    def test_float_formatting(self):
        text = format_rows([{"v": 0.5}, {"v": 1.0}])
        assert "0.5" in text and "1" in text

    def test_bool_rendering(self):
        text = format_rows([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

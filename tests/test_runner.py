"""The timed (event-driven) runner: contention, stalls, determinism."""

import pytest

from repro.system.processor import Processor, ProcessorTiming
from repro.system.runner import TimedRun, timed_run_from_trace
from repro.system.system import System
from repro.workloads.patterns import ping_pong, private_streams
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.trace import Op


class TestProcessor:
    def test_stream_exhaustion(self):
        p = Processor("cpu0", iter([(Op.READ, 0)]))
        assert p.next_reference() == (Op.READ, 0)
        assert p.next_reference() is None
        assert p.done

    def test_issued_counter(self):
        p = Processor("cpu0", iter([(Op.READ, 0), (Op.WRITE, 4)]))
        p.next_reference()
        p.next_reference()
        assert p.stats.issued == 2


class TestTimedRun:
    def test_unknown_processor_rejected(self):
        system = System.homogeneous("moesi", 1)
        with pytest.raises(ValueError, match="without boards"):
            TimedRun(system, [Processor("ghost", iter([]))])

    def test_all_references_complete(self):
        system = System.homogeneous("moesi", 2)
        trace = ping_pong(rounds=25)
        run = timed_run_from_trace(system, trace)
        report = run.run()
        assert report.accesses == len(trace)
        per_unit = {p.unit_id: p.stats.completed for p in run.processors}
        # 25 rounds alternate: cpu0 takes 13 rounds, cpu1 takes 12.
        assert per_unit == {"cpu0": 26, "cpu1": 24}

    def test_elapsed_time_positive_and_monotone_with_work(self):
        def elapsed(rounds):
            system = System.homogeneous("moesi", 2)
            run = timed_run_from_trace(system, ping_pong(rounds=rounds))
            return run.run().elapsed_ns

        assert 0 < elapsed(10) < elapsed(40)

    def test_deterministic(self):
        def run_once():
            config = SyntheticConfig(processors=3, p_shared=0.3)
            trace = SyntheticWorkload(config, seed=5).trace(600)
            system = System.homogeneous("moesi", 3)
            report = timed_run_from_trace(system, trace).run()
            return (report.elapsed_ns, report.bus.transactions)

        assert run_once() == run_once()

    def test_bus_contention_accumulates_wait(self):
        """Non-caching boards need the bus for every access: with several
        of them hammering, somebody must wait."""
        from repro.system.system import BoardSpec

        system = System(
            [BoardSpec(f"cpu{i}", "non-caching") for i in range(4)]
        )
        trace = ping_pong(rounds=50, processors=4)
        run = timed_run_from_trace(system, trace)
        run.run()
        total_wait = sum(p.stats.bus_wait_ns for p in run.processors)
        assert total_wait > 0

    def test_hits_cost_hit_time_not_bus(self):
        system = System.homogeneous("moesi", 1)
        timing = ProcessorTiming(think_ns=0.0, hit_ns=10.0)
        trace = private_streams(
            references_per_processor=10, processors=1, blocks_per_processor=1
        )
        run = timed_run_from_trace(system, trace, timing=timing)
        report = run.run()
        # 1 miss (bus), 29 hits.
        assert report.bus.transactions == 1

    def test_until_cutoff_stops_early(self):
        system = System.homogeneous("moesi", 2)
        run = timed_run_from_trace(system, ping_pong(rounds=500))
        report = run.run(until_ns=5_000.0)
        assert report.elapsed_ns <= 5_000.0
        assert report.accesses < 1000

    def test_coherence_checked_during_timed_run(self):
        system = System.homogeneous("moesi", 3)
        config = SyntheticConfig(processors=3, p_shared=0.5, p_write=0.5)
        trace = SyntheticWorkload(config, seed=2).trace(900)
        timed_run_from_trace(system, trace).run()
        assert not system.check_coherence()

"""Sector caches (section 5.1): tag per sector, consistency state per
transfer subsector."""

import pytest

from repro.cache.sector import SectorCache
from repro.core.states import LineState

M, E, S, I = (
    LineState.MODIFIED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


@pytest.fixture
def cache():
    return SectorCache(
        num_sets=4, associativity=2, subsector_size=32, subsectors_per_sector=4
    )


class TestAddressing:
    def test_sector_and_subsector_decomposition(self, cache):
        assert cache.sector_size == 128
        assert cache.sector_address(0) == 0
        assert cache.sector_address(127) == 0
        assert cache.sector_address(128) == 1
        assert cache.subsector_index(0) == 0
        assert cache.subsector_index(32) == 1
        assert cache.subsector_index(127) == 3

    def test_subsector_address_is_bus_line_address(self, cache):
        """The transfer subsector is the bus-visible unit."""
        assert cache.subsector_address(64) == 2


class TestStatePerSubsector:
    def test_states_are_independent_within_a_sector(self, cache):
        cache.fill_subsector(0, M, 1)
        cache.fill_subsector(32, S, 2)
        assert cache.probe_state(0) is M
        assert cache.probe_state(32) is S
        assert cache.probe_state(64) is I  # same sector, never filled

    def test_one_tag_serves_all_subsectors(self, cache):
        cache.fill_subsector(0, S, 1)
        cache.fill_subsector(96, E, 2)
        sectors, subsectors = cache.occupancy()
        assert sectors == 1 and subsectors == 2

    def test_value_tracking(self, cache):
        cache.fill_subsector(32, M, 7)
        assert cache.value_of(32) == 7
        assert cache.value_of(0) is None

    def test_set_state(self, cache):
        cache.fill_subsector(0, E, 1)
        cache.set_state(0, M)
        assert cache.probe_state(0) is M

    def test_set_state_missing_raises(self, cache):
        with pytest.raises(KeyError):
            cache.set_state(0, M)


class TestAllocation:
    def test_allocate_existing_sector_no_eviction(self, cache):
        cache.fill_subsector(0, S, 1)
        frame, evicted = cache.allocate(64)  # same sector
        assert evicted == []
        assert frame.states[0] is S  # previous subsector intact

    def test_eviction_lists_valid_subsectors(self, cache):
        small = SectorCache(num_sets=1, associativity=1,
                            subsector_size=32, subsectors_per_sector=2)
        small.fill_subsector(0, S, 1)
        small.fill_subsector(32, S, 2)
        _, evicted = small.allocate(64)  # new sector displaces old
        addresses = sorted(a for a, _, _ in evicted)
        assert addresses == [0, 32]

    def test_owned_eviction_requires_writeback_first(self):
        small = SectorCache(num_sets=1, associativity=1,
                            subsector_size=32, subsectors_per_sector=2)
        small.fill_subsector(0, M, 1)
        with pytest.raises(RuntimeError, match="write them back"):
            small.fill_subsector(64, S, 2)

    def test_lru_between_frames(self, cache):
        small = SectorCache(num_sets=1, associativity=2,
                            subsector_size=32, subsectors_per_sector=2)
        small.fill_subsector(0, S, 1)     # sector 0
        small.fill_subsector(64, S, 2)    # sector 1
        small.allocate(0)                 # touch sector 0: now MRU
        _, evicted = small.allocate(128)  # sector 2 evicts sector 1
        assert evicted and evicted[0][0] == 64

    def test_capacity(self, cache):
        assert cache.capacity_bytes == 4 * 2 * 128

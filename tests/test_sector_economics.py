"""Tag-storage economics of sector caches (why section 5.1 cares)."""

import pytest

from repro.cache.sector import tag_economics


class TestTagEconomics:
    def test_sector_design_saves_directory_bits(self):
        result = tag_economics()
        assert result["saving_bits"] > 0
        assert 0 < result["saving_fraction"] < 1

    def test_saving_grows_with_subsectors_per_sector(self):
        small = tag_economics(subsectors_per_sector=2)
        large = tag_economics(subsectors_per_sector=8)
        assert large["saving_fraction"] > small["saving_fraction"]

    def test_state_bits_unaffected(self):
        """Consistency state is per transfer subsector in both designs
        (the paper's conclusion), so only tag storage differs."""
        result = tag_economics(capacity_bytes=1024, line_size=32,
                               subsectors_per_sector=4, state_bits=3)
        lines = result["lines"]
        plain_states = lines * 3
        # Subtract state storage from both totals: remaining = tags.
        plain_tags = result["plain_directory_bits"] - plain_states
        sector_tags = result["sector_directory_bits"] - plain_states
        assert plain_tags == lines * result["plain_tag_bits"]
        assert sector_tags == result["sectors"] * result["sector_tag_bits"]

    def test_sector_tags_shorter(self):
        """Bigger sector offset -> fewer tag bits per entry too."""
        result = tag_economics(subsectors_per_sector=4)
        assert result["sector_tag_bits"] < result["plain_tag_bits"]

    def test_capacity_must_divide(self):
        with pytest.raises(ValueError):
            tag_economics(capacity_bytes=1000, line_size=32)

    def test_concrete_numbers(self):
        """64 KiB, 32-byte lines, 4 subsectors/sector, 32-bit addresses:
        the classic configuration saves ~69% of directory bits."""
        result = tag_economics()
        assert result["lines"] == 2048
        assert result["plain_tag_bits"] == 27
        assert result["sector_tag_bits"] == 25
        assert result["saving_fraction"] == pytest.approx(0.69, abs=0.01)

"""The serve tier: memo cache, stream frames, and the NDJSON daemon.

Daemon tests run a real :class:`repro.serve.server.ReproServer` on an
ephemeral TCP port inside a background thread, talking to it with the
blocking :class:`repro.serve.client.ServeClient`.  Dispatchers are
injected through :class:`ServeConfig` so the tests control execution
exactly -- counting dispatches, stalling to provoke back-pressure and
coalescing, raising to exercise the deadline and error paths -- while
the byte-identity test uses the production job body
(:func:`repro.serve.jobs.execute_payload`) in-process.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.api import execute, plan_experiment, plan_verify
from repro.obs.stream import metrics_frame, reassemble_trace, trace_frames
from repro.perf.engine import ParallelTimeoutError
from repro.serve import MemoCache, ReproServer, ServeClient, ServeConfig
from repro.serve.jobs import execute_payload
from repro.serve.protocol import payload_for
from repro.specs import canonical_json


# ----------------------------------------------------------------------
# The memo cache.
# ----------------------------------------------------------------------
class TestMemoCache:
    def test_miss_then_hit_counts_exactly_once_each(self):
        cache = MemoCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        assert cache.stats() == {
            "capacity": 4, "size": 1, "hits": 1, "misses": 1,
            "evictions": 0,
        }

    def test_lru_eviction_order(self):
        cache = MemoCache(capacity=2)
        cache.put("a", {})
        cache.put("b", {})
        cache.get("a")          # refresh a; b is now least-recent
        cache.put("c", {})
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_put_refresh_does_not_evict(self):
        cache = MemoCache(capacity=2)
        cache.put("a", {})
        cache.put("b", {})
        cache.put("a", {"v": 2})
        assert len(cache) == 2
        assert cache.get("a") == {"v": 2}
        assert cache.stats()["evictions"] == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            MemoCache(capacity=0)

    def test_clear(self):
        cache = MemoCache()
        cache.put("a", {})
        cache.clear()
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Stream frames.
# ----------------------------------------------------------------------
class TestStreamFrames:
    def test_round_trip(self):
        events = [{"seq": i} for i in range(10)]
        frames = list(trace_frames(events, chunk=3))
        assert [f["seq"] for f in frames] == [0, 1, 2, 3]
        assert all(f["total"] == 4 for f in frames)
        assert reassemble_trace([metrics_frame({"m": 1})] + frames) == events

    def test_empty_trace_is_no_frames(self):
        assert list(trace_frames([], chunk=4)) == []
        assert reassemble_trace([]) == []

    def test_gap_detected(self):
        frames = list(trace_frames([{"e": i} for i in range(9)], chunk=3))
        with pytest.raises(ValueError, match="gap"):
            reassemble_trace([frames[0], frames[2]])

    def test_short_delivery_detected(self):
        frames = list(trace_frames([{"e": i} for i in range(9)], chunk=3))
        with pytest.raises(ValueError, match="2 of 3"):
            reassemble_trace(frames[:2])


# ----------------------------------------------------------------------
# The daemon.
# ----------------------------------------------------------------------
class Daemon:
    """A ReproServer on an ephemeral port in a background thread."""

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        self.config = ServeConfig(**config_kwargs)
        self.server = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.server = ReproServer(self.config)
            await self.server.start()
            self._ready.set()
            await self.server.serve_forever()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10), "daemon never came up"
        return self

    def __exit__(self, *exc):
        try:
            self.client().shutdown()
        except OSError:
            pass
        self._thread.join(timeout=10)

    def client(self, timeout_s=30.0) -> ServeClient:
        return ServeClient(
            port=self.server.endpoints["port"], timeout_s=timeout_s
        )


def counting_dispatcher(counter: list):
    def dispatcher(canonical, deadline_s):
        counter.append(canonical)
        return execute_payload(canonical)

    return dispatcher


SPEC = plan_experiment(protocol="moesi", references=150, seed=3)


class TestDaemon:
    def test_memoized_repeat_skips_dispatch(self):
        dispatched = []
        with Daemon(dispatcher=counting_dispatcher(dispatched)) as daemon:
            client = daemon.client()
            first = client.execute(SPEC)
            second = client.execute(SPEC)
            status = client.status()["data"]
        assert first["ok"] and not first["cached"]
        assert second["ok"] and second["cached"]
        assert first["hash"] == second["hash"] == SPEC.content_hash()
        # The hit answered from memory: exactly one dispatch ever ran.
        assert len(dispatched) == 1
        assert status["cache"]["hits"] == 1
        assert status["cache"]["misses"] == 1
        assert status["counters"]["executed"] == 1
        # Byte-for-byte: cached and computed responses are identical.
        assert canonical_json(first["data"]) == canonical_json(second["data"])
        assert first["metrics"] == second["metrics"]

    def test_served_result_byte_identical_to_direct_execute(self):
        spec = plan_experiment(
            protocol="dragon", references=150, seed=5, trace=True,
        )
        with Daemon() as daemon:  # production dispatcher, warm pool
            served = daemon.client().execute(spec)
        local = payload_for(spec, execute(spec))
        assert served["ok"]
        assert canonical_json(served["data"]) == canonical_json(local["data"])
        assert (
            canonical_json(served["metrics"])
            == canonical_json(local["metrics"])
        )
        assert (
            canonical_json(served["trace"]) == canonical_json(local["trace"])
        )

    def test_streamed_response_reassembles_identically(self):
        spec = plan_experiment(
            protocol="moesi", references=150, seed=4, trace=True,
        )
        dispatched = []
        with Daemon(
            dispatcher=counting_dispatcher(dispatched), stream_chunk=16
        ) as daemon:
            client = daemon.client()
            plain = client.execute(spec)
            streamed = client.execute(spec, stream=True)
        assert streamed["streamed"] and streamed["cached"]
        assert canonical_json(streamed["data"]) == canonical_json(plain["data"])
        assert canonical_json(streamed["trace"]) == canonical_json(plain["trace"])
        assert streamed["metrics"] == plain["metrics"]

    def test_back_pressure_rejects_beyond_bound(self):
        release = threading.Event()

        def stalling(canonical, deadline_s):
            release.wait(timeout=30)
            return execute_payload(canonical)

        with Daemon(
            dispatcher=stalling, concurrency=1, max_pending=0,
            retry_after_s=0.25,
        ) as daemon:
            slow = daemon.client()
            results = {}
            thread = threading.Thread(
                target=lambda: results.update(slow=slow.execute(SPEC))
            )
            thread.start()
            # Wait until the stalled job is admitted, then overflow with
            # a *different* spec (same spec would coalesce, not queue).
            other = plan_experiment(protocol="berkeley", references=150)
            for _ in range(100):
                if daemon.client().status()["data"]["admitted"]:
                    break
                time.sleep(0.02)
            busy = daemon.client().execute(other)
            release.set()
            thread.join(timeout=30)
            status = daemon.client().status()["data"]
        assert not busy["ok"]
        assert busy["error"] == "busy"
        assert busy["retry_after"] == 0.25
        assert results["slow"]["ok"]
        assert status["counters"]["busy_rejections"] == 1

    def test_identical_inflight_requests_coalesce(self):
        started = threading.Event()
        release = threading.Event()
        dispatched = []

        def stalling(canonical, deadline_s):
            dispatched.append(canonical)
            started.set()
            release.wait(timeout=30)
            return execute_payload(canonical)

        with Daemon(dispatcher=stalling, concurrency=2) as daemon:
            results = {}

            def submit(name):
                results[name] = daemon.client().execute(SPEC)

            first = threading.Thread(target=submit, args=("a",))
            first.start()
            assert started.wait(timeout=10)
            second = threading.Thread(target=submit, args=("b",))
            second.start()
            for _ in range(100):
                if daemon.client().status()["data"]["counters"]["coalesced"]:
                    break
                time.sleep(0.02)
            release.set()
            first.join(timeout=30)
            second.join(timeout=30)
        assert len(dispatched) == 1
        assert results["a"]["ok"] and results["b"]["ok"]
        assert {results["a"]["coalesced"], results["b"]["coalesced"]} == {
            False, True,
        }
        assert (
            canonical_json(results["a"]["data"])
            == canonical_json(results["b"]["data"])
        )

    def test_deadline_overrun_answers_deadline_error(self):
        def overrunning(canonical, deadline_s):
            raise ParallelTimeoutError(0, deadline_s)

        with Daemon(dispatcher=overrunning) as daemon:
            response = daemon.client().execute(SPEC, deadline=0.01)
            status = daemon.client().status()["data"]
        assert not response["ok"]
        assert response["error"] == "deadline"
        assert status["counters"]["deadline_failures"] == 1

    def test_worker_exception_answers_execution_error(self):
        def exploding(canonical, deadline_s):
            raise RuntimeError("boom")

        with Daemon(dispatcher=exploding) as daemon:
            response = daemon.client().execute(SPEC)
        assert not response["ok"]
        assert response["error"] == "execution"
        assert "boom" in response["detail"]

    def test_failed_jobs_are_not_memoized(self):
        calls = []

        def flaky(canonical, deadline_s):
            calls.append(canonical)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return execute_payload(canonical)

        with Daemon(dispatcher=flaky) as daemon:
            failed = daemon.client().execute(SPEC)
            retried = daemon.client().execute(SPEC)
        assert not failed["ok"]
        assert retried["ok"] and not retried["cached"]
        assert len(calls) == 2

    def test_bad_requests_answered_not_fatal(self):
        with Daemon() as daemon:
            client = daemon.client()
            bad_spec = client._roundtrip(
                {"command": "execute", "spec": {"kind": "nonesuch"}}
            )
            unknown = client._roundtrip({"command": "frobnicate"})
            # Daemon still up and serving afterwards.
            status = client.status()
        assert not bad_spec["ok"] and bad_spec["error"] == "bad-request"
        assert not unknown["ok"] and unknown["error"] == "unknown-command"
        assert status["ok"]
        assert status["data"]["counters"]["errors"] == 2

    def test_verify_spec_served(self):
        dispatched = []
        with Daemon(dispatcher=counting_dispatcher(dispatched)) as daemon:
            response = daemon.client().execute(
                plan_verify(suites=("class-members",))
            )
        assert response["ok"]
        assert response["data"]["kind"] == "verify"
        assert response["data"]["ok"] is True
        assert response["data"]["rows"]

    def test_status_reports_pool_and_endpoints(self):
        with Daemon() as daemon:
            status = daemon.client().status()["data"]
        assert status["endpoints"]["port"] == daemon.server.endpoints["port"]
        assert "pool_starts" in status["pool"]
        assert "dispatches" in status["pool"]
        assert status["concurrency"] == 2

"""Continuous batching on the serve tier: admission, coalescing,
deadline drops, and byte-identity of de-multiplexed results.

Daemon tests run a real :class:`repro.serve.server.ReproServer` on an
ephemeral port in a background thread (same harness as
``test_serve.py``), but inject *in-process* dispatchers so the tests
execute the production job bodies (:func:`execute_payload`,
:func:`execute_batch_payloads`) without a worker pool -- which also
lets a monkeypatched ``repro.perf.batch._np = None`` force the
pure-Python kernel backend on both the served and the direct leg.
"""

import asyncio
import pickle
import threading

import pytest

import repro.perf.batch as batch_mod
from repro.api import execute, execute_many, plan_experiment
from repro.perf.batch import available_backends, run_batch_specs
from repro.serve import ReproServer, ServeClient, ServeConfig
from repro.serve.jobs import execute_batch_payloads, execute_payload
from repro.serve.protocol import payload_for, payload_json
from repro.specs import BatchSpec, ExperimentSpec, canonical_json


def batch_spec(seed=0, protocols=("moesi",), **kwargs):
    kwargs.setdefault("rows", 4)
    kwargs.setdefault("events_per_row", 40)
    return BatchSpec(protocols=protocols, seed=seed, **kwargs)


def direct_payload(spec):
    """The reference payload: one-at-a-time local execution."""
    return payload_for(spec, execute(spec, workers=1))


# ----------------------------------------------------------------------
# The compatibility key.
# ----------------------------------------------------------------------
class TestBatchKey:
    def test_geometry_rows_seed_do_not_split_populations(self):
        # Padding handles heterogeneous geometry; rows/seed are per-row
        # schedule inputs.  Only the board mix splits the key.
        a = batch_spec(seed=1)
        b = batch_spec(seed=2, rows=8, events_per_row=60,
                       geometry=(8, 2, 64, 4))
        assert a.batch_key() is not None
        assert a.batch_key() == b.batch_key()

    def test_protocol_mix_shares_the_key_but_board_count_splits_it(self):
        # run_batch_specs groups merged rows by unit mix internally, so
        # different lowerable protocols coalesce under one key; the
        # board count changes the population shape and does split it.
        assert (
            batch_spec(protocols=("moesi",)).batch_key()
            == batch_spec(protocols=("illinois",)).batch_key()
        )
        assert (
            batch_spec(protocols=("moesi",)).batch_key()
            != batch_spec(protocols=("moesi",), n_units=3).batch_key()
        )

    def test_stateful_selector_protocols_are_not_batchable(self):
        assert batch_spec(protocols=("moesi-random",)).batch_key() is None

    def test_non_batch_specs_have_no_key(self):
        assert plan_experiment(references=50).batch_key() is None


# ----------------------------------------------------------------------
# content_hash caching (satellite).
# ----------------------------------------------------------------------
class TestContentHashCache:
    def test_hash_cached_on_instance_and_stable(self):
        from repro.specs import spec_from_canonical

        spec = batch_spec(seed=9)
        first = spec.content_hash()
        assert spec.__dict__["_content_hash"] == first
        assert spec.content_hash() is first  # the cached string itself
        # The cache is an optimization, not part of identity: a fresh
        # instance from the canonical form hashes to the same digest.
        assert spec_from_canonical(spec.canonical()).content_hash() == first

    def test_pickle_round_trip_keeps_hash_correct(self):
        spec = batch_spec(seed=11)
        before = spec.content_hash()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.content_hash() == before


# ----------------------------------------------------------------------
# run_batch_specs: the coalesced kernel entry point.
# ----------------------------------------------------------------------
class TestRunBatchSpecs:
    @pytest.mark.parametrize("backend", available_backends())
    def test_merged_rows_match_per_spec_execution(self, backend):
        specs = [
            batch_spec(seed=0),
            batch_spec(seed=1, rows=6, geometry=(8, 2, 64, 4)),
            batch_spec(seed=0),  # duplicate spec: independent rows
            batch_spec(seed=2, protocols=("moesi", "illinois"), n_units=2),
        ]
        merged = run_batch_specs(specs, backend=backend)
        for spec, rows in zip(specs, merged):
            expected = payload_for(spec, execute(
                spec, workers=1, backend=backend))
            assert payload_json(payload_for(spec, rows)) == payload_json(
                expected
            )


# ----------------------------------------------------------------------
# api.execute_many (in-process face of the batching path).
# ----------------------------------------------------------------------
class TestExecuteMany:
    def test_mixed_list_matches_one_at_a_time(self):
        specs = [
            batch_spec(seed=3),
            plan_experiment(protocol="dragon", references=80, seed=5),
            batch_spec(seed=4),
        ]
        results = execute_many(specs)
        for spec, result in zip(specs, results):
            assert payload_json(payload_for(spec, result)) == payload_json(
                direct_payload(spec)
            )


# ----------------------------------------------------------------------
# The daemon's admission queue.
# ----------------------------------------------------------------------
class Daemon:
    """A ReproServer on an ephemeral port, dispatching in-process."""

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        config_kwargs.setdefault(
            "dispatcher",
            lambda canonical, deadline_s: execute_payload(canonical),
        )
        config_kwargs.setdefault(
            "batch_dispatcher",
            lambda canonicals, deadline_s: execute_batch_payloads(
                canonicals
            ),
        )
        self.config = ServeConfig(**config_kwargs)
        self.server = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.server = ReproServer(self.config)
            await self.server.start()
            self._ready.set()
            await self.server.serve_forever()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10), "daemon never came up"
        return self

    def __exit__(self, *exc):
        try:
            self.client().shutdown()
        except OSError:
            pass
        self._thread.join(timeout=10)

    def client(self, timeout_s=30.0) -> ServeClient:
        return ServeClient(
            port=self.server.endpoints["port"], timeout_s=timeout_s
        )


BURST = [batch_spec(seed=seed) for seed in range(6)]


class TestDaemonBatching:
    @pytest.mark.parametrize("backend", available_backends())
    def test_burst_coalesces_byte_identical(self, backend, monkeypatch):
        if backend == "python":
            monkeypatch.setattr(batch_mod, "_np", None)
        with Daemon(batch_window_s=0.5, batch_max=64) as daemon:
            client = daemon.client()
            envelopes = client.execute_many(BURST)
            status = client.status()["data"]["batch"]
        assert all(env["ok"] for env in envelopes)
        assert all(env.get("batched") for env in envelopes)
        # One admission window caught the whole burst.
        assert status["populations"] >= 1
        assert status["max_population"] > 1
        assert status["rows"] == len(BURST)
        for spec, env in zip(BURST, envelopes):
            local = direct_payload(spec)
            assert env["hash"] == spec.content_hash()
            assert canonical_json(env["data"]) == canonical_json(
                local["data"]
            )
            assert env["metrics"] == local["metrics"]

    def test_window_zero_degenerates_to_populations_of_one(self):
        with Daemon(batch_window_s=0.0) as daemon:
            client = daemon.client()
            envelopes = client.execute_many(BURST[:3])
            status = client.status()["data"]["batch"]
        assert all(env["ok"] for env in envelopes)
        assert all(env["population"] == 1 for env in envelopes)
        assert status["populations"] == 3
        assert status["max_population"] == 1
        for spec, env in zip(BURST[:3], envelopes):
            assert canonical_json(env["data"]) == canonical_json(
                direct_payload(spec)["data"]
            )

    def test_negative_window_disables_the_batch_path(self):
        spec = BURST[0]
        with Daemon(batch_window_s=-1.0) as daemon:
            envelope = daemon.client().execute(spec)
            status = daemon.client().status()["data"]["batch"]
        assert envelope["ok"] and "batched" not in envelope
        assert status["populations"] == 0
        assert status["scalar_path"] == 1
        assert canonical_json(envelope["data"]) == canonical_json(
            direct_payload(spec)["data"]
        )

    def test_mixed_burst_routes_and_stays_identical(self):
        # Batchable sweeps, non-batchable kinds, and an exact duplicate
        # -- all submitted in one concurrent burst.
        specs = [
            batch_spec(seed=0),
            batch_spec(seed=1),
            plan_experiment(protocol="dragon", references=80, seed=5),
            plan_experiment(protocol="moesi", references=80, seed=6),
            batch_spec(seed=0),  # duplicate: single-flight coalesces it
        ]
        with Daemon(batch_window_s=0.5, batch_max=64) as daemon:
            client = daemon.client()
            envelopes = client.execute_many(specs)
            data = client.status()["data"]
        assert all(env["ok"] for env in envelopes)
        counters = data["counters"]
        # Experiment + stateful-selector sweep computed one at a time.
        assert data["batch"]["scalar_path"] == 2
        # The duplicate coalesced onto its twin's in-flight computation.
        assert counters["coalesced"] == 1
        assert counters["executed"] == 4
        batched = [env for env in envelopes if env.get("batched")]
        assert len(batched) >= 2
        for spec, env in zip(specs, envelopes):
            local = direct_payload(spec)
            assert canonical_json(env["data"]) == canonical_json(
                local["data"]
            )
            assert env["metrics"] == local["metrics"]

    def test_expired_row_dropped_neighbour_survives(self):
        live_spec, doomed_spec = batch_spec(seed=20), batch_spec(seed=21)
        with Daemon(batch_window_s=0.5, batch_max=64) as daemon:
            client = daemon.client()
            results = {}

            def submit(name, spec, deadline):
                results[name] = client.execute(spec, deadline=deadline)

            threads = [
                threading.Thread(
                    target=submit, args=("live", live_spec, None)
                ),
                threading.Thread(
                    target=submit, args=("doomed", doomed_spec, 0.05)
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            status = daemon.client().status()["data"]
        doomed = results["doomed"]
        assert not doomed["ok"]
        assert doomed["error"] == "deadline"
        assert doomed["batched"]
        live = results["live"]
        assert live["ok"] and live["batched"]
        assert live["population"] == 1  # the doomed row left the batch
        assert canonical_json(live["data"]) == canonical_json(
            direct_payload(live_spec)["data"]
        )
        assert status["counters"]["deadline_dropped"] == 1
        assert status["batch"]["max_population"] == 1

"""Tests for the bus signal lines and wired-OR aggregation (section 3.2)."""

import pytest

from repro.core.signals import (
    MasterSignals,
    ResponseAggregate,
    SignalLine,
    SnoopResponse,
)


class TestMasterSignals:
    def test_defaults_deasserted(self):
        signals = MasterSignals()
        assert not (signals.ca or signals.im or signals.bc)

    def test_notation_all_asserted(self):
        assert MasterSignals(True, True, True).notation() == "CA,IM,BC"

    def test_notation_all_deasserted(self):
        assert MasterSignals().notation() == "~CA,~IM,~BC"

    def test_notation_mixed(self):
        assert MasterSignals(ca=True, im=True).notation() == "CA,IM,~BC"

    def test_is_write_tracks_im(self):
        assert MasterSignals(im=True).is_write
        assert not MasterSignals(ca=True).is_write

    def test_broadcast_push_allowed(self):
        """BC without IM is a broadcast push (write-back); legal."""
        signals = MasterSignals(ca=True, im=False, bc=True)
        assert signals.is_broadcast and not signals.is_write

    def test_frozen(self):
        with pytest.raises(Exception):
            MasterSignals().ca = True  # type: ignore[misc]


class TestSnoopResponse:
    def test_none_constant_asserts_nothing(self):
        assert not SnoopResponse.NONE.asserts_anything

    def test_notation_order(self):
        response = SnoopResponse(ch=True, di=True)
        assert response.notation() == "CH,DI"

    def test_ch_dont_care_notation(self):
        assert SnoopResponse(ch=None, di=True).notation() == "CH?,DI"

    def test_dont_care_does_not_assert(self):
        assert not SnoopResponse(ch=None).asserts_anything

    def test_bs_notation(self):
        assert SnoopResponse(bs=True).notation() == "BS"

    def test_empty_str(self):
        assert str(SnoopResponse()) == "(none)"


class TestResponseAggregate:
    """Open-collector: the observed value is the OR over all drivers."""

    def test_empty(self):
        agg = ResponseAggregate.of([])
        assert not (agg.ch or agg.di or agg.sl or agg.bs)

    def test_single_driver_pulls_line(self):
        agg = ResponseAggregate.of([SnoopResponse(ch=True)])
        assert agg.ch and agg.shared

    def test_or_over_many(self):
        agg = ResponseAggregate.of(
            [
                SnoopResponse(ch=True),
                SnoopResponse(di=True),
                SnoopResponse(sl=True),
            ]
        )
        assert agg.ch and agg.di and agg.sl and not agg.bs

    def test_dont_care_contributes_nothing(self):
        agg = ResponseAggregate.of([SnoopResponse(ch=None)])
        assert not agg.ch

    def test_abort_flag(self):
        assert ResponseAggregate.of([SnoopResponse(bs=True)]).aborted

    def test_intervened_flag(self):
        assert ResponseAggregate.of([SnoopResponse(di=True)]).intervened

    def test_notation(self):
        agg = ResponseAggregate(ch=True, sl=True)
        assert agg.notation() == "CH,SL"


class TestSignalLine:
    @pytest.mark.parametrize("line", [SignalLine.CA, SignalLine.IM, SignalLine.BC])
    def test_master_signals(self, line):
        assert line.is_master_signal and not line.is_response_signal

    @pytest.mark.parametrize(
        "line", [SignalLine.CH, SignalLine.DI, SignalLine.SL, SignalLine.BS]
    )
    def test_response_signals(self, line):
        assert line.is_response_signal and not line.is_master_signal

    def test_seven_lines(self):
        """Six for MOESI plus BS for the adapted protocols (section 3.2)."""
        assert len(list(SignalLine)) == 7

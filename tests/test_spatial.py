"""The byte-granular spatial workload."""

import pytest

from repro.workloads.spatial import SpatialConfig, SpatialWorkload
from repro.workloads.trace import Op


class TestConfig:
    def test_defaults_valid(self):
        config = SpatialConfig()
        assert config.shared_region_bytes == 4 * 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"processors": 0},
            {"stride": 0},
            {"private_bytes": 2, "stride": 4},
            {"p_shared": 1.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SpatialConfig(**kwargs)


class TestAddressMap:
    def test_private_regions_disjoint_and_aligned(self):
        workload = SpatialWorkload(SpatialConfig(processors=3))
        bases = [workload.private_base(p) for p in range(3)]
        assert bases == sorted(bases)
        assert all(base % 4096 == 0 for base in bases)
        assert bases[0] >= SpatialConfig().shared_region_bytes

    def test_shared_slots_packed(self):
        """Adjacent processors' slots share any line of >= 2 slots --
        the false-sharing setup."""
        config = SpatialConfig(shared_slot_bytes=8)
        workload = SpatialWorkload(config)
        assert workload.shared_slot(1) - workload.shared_slot(0) == 8


class TestGeneration:
    def test_reproducible(self):
        config = SpatialConfig()
        a = SpatialWorkload(config, seed=3).trace(400)
        b = SpatialWorkload(config, seed=3).trace(400)
        assert a.records == b.records

    def test_private_scan_is_sequential(self):
        config = SpatialConfig(processors=1, p_shared=0.0, stride=4)
        trace = SpatialWorkload(config, seed=1).trace(50)
        addresses = [r.address for r in trace]
        deltas = {
            b - a for a, b in zip(addresses, addresses[1:])
            if b - a > 0
        }
        assert deltas == {4}

    def test_shared_accesses_stay_in_own_slot(self):
        config = SpatialConfig(processors=4, p_shared=1.0)
        workload = SpatialWorkload(config, seed=2)
        trace = workload.trace(400)
        for record in trace:
            processor = int(record.unit[3:])
            slot = workload.shared_slot(processor)
            assert slot <= record.address < slot + config.shared_slot_bytes

    def test_shared_fraction_approximate(self):
        config = SpatialConfig(p_shared=0.3)
        trace = SpatialWorkload(config, seed=5).trace(4000)
        shared = sum(
            1 for r in trace if r.address < config.shared_region_bytes
        )
        assert shared / len(trace) == pytest.approx(0.3, abs=0.05)

    def test_write_mix(self):
        config = SpatialConfig(p_shared=0.0, p_private_write=1.0)
        trace = SpatialWorkload(config, seed=1).trace(100)
        assert all(r.op is Op.WRITE for r in trace)


class TestFalseSharing:
    def test_large_lines_cause_cross_processor_invalidation(self):
        """Two processors writing adjacent 8-byte slots never share data,
        but with 64-byte lines their writes collide."""
        from repro.system.system import System

        config = SpatialConfig(processors=2, p_shared=1.0,
                               p_shared_write=1.0)
        trace = SpatialWorkload(config, seed=7).trace(300)

        def invalidations(line_size):
            system = System.homogeneous(
                "moesi-invalidate", 2, line_size=line_size
            )
            system.run_trace(trace)
            return system.report().invalidations

        assert invalidations(64) > invalidations(4) == 0

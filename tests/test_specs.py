"""The plan/execute split: canonical spec strings, content hashes, and
byte-identity between ``execute(plan(...))`` and the legacy Session
entry points.

The properties under test are the ones the serve tier's memoization
correctness rests on: equal specs hash identically in every process,
different work hashes differently, and the two API spellings produce
byte-for-byte the same results (so a cached payload is indistinguishable
from a recomputed one).
"""

import json
import pickle
import subprocess
import sys
import warnings

import pytest

from repro.api import (
    Session,
    execute,
    plan,
    plan_experiment,
    plan_fuzz,
    plan_shootout,
    plan_verify,
)
from repro.specs import (
    SPEC_VERSION,
    BatchSpec,
    ExperimentSpec,
    FuzzSpec,
    GeometrySpec,
    ShootoutSpec,
    VerifySpec,
    WorkloadSpec,
    spec_from_canonical,
    spec_from_dict,
)

SMALL = dict(references=200, seed=3)


def all_spec_examples():
    return [
        plan_experiment(protocol="dragon", **SMALL, timed=True),
        plan_experiment(protocols=("moesi", "berkeley"), processors=2,
                        **SMALL, discipline="round-robin"),
        plan_verify(suites=("class-members",)),
        plan_fuzz(seeds=3, trace=True),
        plan_shootout(references=300),
        plan("batch", rows=8, events_per_row=20),
    ]


# ----------------------------------------------------------------------
# Canonicalization and hashing.
# ----------------------------------------------------------------------
class TestCanonical:
    def test_round_trip_every_kind(self):
        for spec in all_spec_examples():
            rebuilt = spec_from_canonical(spec.canonical())
            assert rebuilt == spec
            assert rebuilt.canonical() == spec.canonical()
            assert rebuilt.content_hash() == spec.content_hash()

    def test_dict_round_trip(self):
        for spec in all_spec_examples():
            assert spec_from_dict(spec.to_dict()) == spec

    def test_canonical_carries_version_and_kind(self):
        for spec in all_spec_examples():
            data = json.loads(spec.canonical())
            assert data["v"] == SPEC_VERSION
            assert data["kind"] == spec.kind

    def test_pickle_round_trip(self):
        for spec in all_spec_examples():
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
            assert clone.content_hash() == spec.content_hash()

    def test_specs_are_hashable_dict_keys(self):
        table = {spec: i for i, spec in enumerate(all_spec_examples())}
        assert len(table) == len(all_spec_examples())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown spec kind"):
            spec_from_dict({"kind": "nonesuch"})
        with pytest.raises(ValueError, match="must be a dict"):
            spec_from_dict([1, 2, 3])

    def test_hash_stable_across_processes(self):
        spec = plan_experiment(protocol="moesi", **SMALL, timed=True)
        program = (
            "from repro.api import plan_experiment;"
            "print(plan_experiment(protocol='moesi', references=200,"
            " seed=3, timed=True).content_hash())"
        )
        child = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "99"},
        )
        assert child.stdout.strip() == spec.content_hash()

    def test_hash_differs_by_seed_geometry_discipline(self):
        base = plan_experiment(protocol="moesi", **SMALL)
        variants = [
            plan_experiment(protocol="moesi", references=200, seed=4),
            plan_experiment(protocol="moesi", **SMALL,
                            geometry=GeometrySpec(num_sets=16)),
            plan_experiment(protocol="moesi", **SMALL,
                            discipline="priority"),
            plan_experiment(protocol="berkeley", **SMALL),
            plan_experiment(protocol="moesi", **SMALL, timed=True),
        ]
        hashes = {base.content_hash()}
        for variant in variants:
            assert variant.content_hash() not in hashes
            hashes.add(variant.content_hash())

    def test_execution_details_stay_out_of_the_hash(self):
        # workers/backend/out_dir ride on execute(); nothing in any spec
        # mentions them, so one hash covers every way of computing it.
        spec = plan_verify(suites=("class-members",))
        assert "workers" not in spec.canonical()
        assert "backend" not in spec.canonical()


# ----------------------------------------------------------------------
# The workload spec.
# ----------------------------------------------------------------------
class TestWorkloadSpec:
    def test_synthetic_build_is_deterministic(self):
        spec = WorkloadSpec(references=50, seed=9)
        first = [(r.unit, r.op.value, r.address) for r in spec.build()]
        second = [(r.unit, r.op.value, r.address) for r in spec.build()]
        assert first == second

    def test_literal_embeds_and_rebuilds_exactly(self):
        trace = WorkloadSpec(references=40, seed=5).build()
        lit = WorkloadSpec.literal(trace)
        rebuilt = lit.build()
        assert (
            [(r.unit, r.op.value, r.address) for r in rebuilt]
            == [(r.unit, r.op.value, r.address) for r in trace]
        )
        # ... and the canonical string survives the round trip.
        assert WorkloadSpec.from_dict(json.loads(lit.canonical())) == lit

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="unknown workload source"):
            WorkloadSpec(source="oracle")


# ----------------------------------------------------------------------
# Byte-identity: execute(plan(...)) vs the legacy entry points.
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_experiment_report_identical(self):
        spec = plan_experiment(protocol="moesi", **SMALL, timed=True)
        planned = execute(spec)
        legacy = Session().run_experiment(
            protocol="moesi", references=200, seed=3, timed=True
        )
        assert planned.report.to_json() == legacy.report.to_json()
        assert planned.metrics == legacy.metrics

    def test_traced_experiment_identical(self):
        spec = plan_experiment(
            protocols=("moesi", "dragon"), processors=2, **SMALL,
            trace=True,
        )
        planned = execute(spec)
        legacy = Session(trace=True).run_experiment(
            protocols=("moesi", "dragon"), processors=2,
            references=200, seed=3,
        )
        assert planned.report.to_json() == legacy.report.to_json()
        assert (
            json.dumps(planned.trace, sort_keys=True, default=str)
            == json.dumps(legacy.trace, sort_keys=True, default=str)
        )

    def test_explicit_workload_identical(self):
        trace = WorkloadSpec(references=120, seed=11).build()
        spec = plan_experiment(protocol="illinois", workload=trace)
        planned = execute(spec)
        legacy = Session().run_experiment(
            protocol="illinois", workload=trace
        )
        assert planned.report.to_json() == legacy.report.to_json()

    def test_verify_rows_identical(self):
        spec = plan_verify(suites=("class-members",))
        planned = execute(spec)
        legacy = Session().verify(suites=("class-members",))
        assert planned.rows == legacy.rows

    def test_shootout_rows_identical(self):
        spec = plan_shootout(references=300)
        assert execute(spec) == Session().shootout(references=300)

    def test_fuzz_report_identical(self):
        spec = plan_fuzz(seeds=2)
        planned = execute(spec)
        legacy = Session().fuzz_campaign(seeds=2)
        assert planned.report.to_dict() == legacy.report.to_dict()

    def test_execute_accepts_dict_and_canonical_string(self):
        spec = plan_experiment(protocol="moesi", **SMALL)
        via_obj = execute(spec).report.to_json()
        assert execute(spec.to_dict()).report.to_json() == via_obj
        assert execute(spec.canonical()).report.to_json() == via_obj

    def test_execute_rejects_non_specs(self):
        with pytest.raises(TypeError, match="cannot execute"):
            Session().execute(42)


# ----------------------------------------------------------------------
# The legacy keyword paths: still working, warning once.
# ----------------------------------------------------------------------
class TestLegacyKeywords:
    def test_board_kwargs_warn_once_and_match_geometry(self):
        from repro.deprecation import reset_deprecation_warnings

        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loose = Session().run_experiment(
                protocol="moesi", references=150, seed=2, num_sets=16,
                associativity=1,
            )
            again = Session().run_experiment(
                protocol="moesi", references=150, seed=2, num_sets=16,
                associativity=1,
            )
        legacy = [w for w in caught
                  if issubclass(w.category, DeprecationWarning)]
        assert len(legacy) == 1
        assert "GeometrySpec" in str(legacy[0].message)
        explicit = Session().run_experiment(
            protocol="moesi", references=150, seed=2,
            geometry=GeometrySpec(num_sets=16, associativity=1),
        )
        assert loose.report.to_json() == explicit.report.to_json()
        assert again.report.to_json() == explicit.report.to_json()

    def test_unknown_board_kwarg_raises(self):
        with pytest.raises(TypeError, match="unknown"):
            Session().run_experiment(protocol="moesi", lines=4)

    def test_planned_spec_matches_loose_kwargs(self):
        from repro.deprecation import reset_deprecation_warnings

        reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            loose = plan_experiment(protocol="moesi", num_sets=8)
        explicit = plan_experiment(
            protocol="moesi", geometry=GeometrySpec(num_sets=8)
        )
        assert loose.content_hash() == explicit.content_hash()

    def test_cases_and_suites_are_exclusive(self):
        with pytest.raises(ValueError, match="either cases or suites"):
            Session().verify(cases=[object()], suites=("class-members",))


# ----------------------------------------------------------------------
# Scenario <-> FuzzSpec round trip.
# ----------------------------------------------------------------------
class TestScenarioBridge:
    def test_scenario_round_trips_through_fuzz_spec(self):
        from repro.fuzz.runner import (
            fuzz_spec_for_scenario,
            scenario_from_fuzz_spec,
        )
        from repro.fuzz.scenario import generate_scenario

        scenario = generate_scenario(6)
        spec = fuzz_spec_for_scenario(scenario)
        assert isinstance(spec, FuzzSpec)
        rebuilt = scenario_from_fuzz_spec(spec)
        assert rebuilt.canonical() == scenario.canonical()
        assert rebuilt.content_hash() == scenario.content_hash()

    def test_replay_spec_executes(self):
        from repro.fuzz.runner import fuzz_spec_for_scenario
        from repro.fuzz.scenario import generate_scenario

        scenario = generate_scenario(6)
        result = execute(fuzz_spec_for_scenario(scenario))
        assert result.ok
        assert result.report.seeds_run == 1
        assert result.report.steps_run > 0

    def test_campaign_spec_requires_no_scenario_json(self):
        from repro.fuzz.runner import scenario_from_fuzz_spec

        with pytest.raises(ValueError, match="scenario_json"):
            scenario_from_fuzz_spec(FuzzSpec(seeds=2))

    def test_default_scenario_hashes_like_explicit_default(self):
        from repro.fuzz.scenario import ScenarioConfig

        assert (
            FuzzSpec(seeds=5).content_hash()
            == FuzzSpec(seeds=5, scenario=ScenarioConfig()).content_hash()
        )

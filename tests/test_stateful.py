"""Hypothesis stateful testing: a rule-based machine drives a mixed
MOESI-class system and cross-checks it against a trivial reference model
(a dict of last-written tokens) after every step.

This complements the exhaustive explorer (bounded exhaustiveness on tiny
configurations) and the fixed-seed fuzz tests (fixed topology) with
*adaptive* case generation: hypothesis shrinks any failure to a minimal
operation sequence."""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.system.system import BoardSpec, System

PROTOCOL_POOL = (
    "moesi",
    "moesi-invalidate",
    "moesi-update",
    "berkeley",
    "dragon",
    "write-through",
    "non-caching",
)

LINES = 4
LINE_SIZE = 32


class CoherentSystemMachine(RuleBasedStateMachine):
    """Reads/writes/flushes against the real system vs a dict oracle."""

    @initialize(
        protocols=st.lists(
            st.sampled_from(PROTOCOL_POOL), min_size=2, max_size=3
        )
    )
    def build(self, protocols):
        boards = [
            BoardSpec(f"u{i}", name, num_sets=2, associativity=1)
            for i, name in enumerate(protocols)
        ]
        # check=True: the system itself raises on any stale read or
        # broken invariant, so rules only need to drive it.
        self.system = System(boards, check=True)
        self.units = list(self.system.controllers)
        self.oracle: dict[int, int] = {}

    @rule(unit=st.integers(0, 2), line=st.integers(0, LINES - 1))
    def read(self, unit, line):
        name = self.units[unit % len(self.units)]
        value = self.system.read(name, line * LINE_SIZE)
        assert value == self.oracle.get(line, 0)

    @rule(unit=st.integers(0, 2), line=st.integers(0, LINES - 1))
    def write(self, unit, line):
        name = self.units[unit % len(self.units)]
        token = self.system.write(name, line * LINE_SIZE)
        self.oracle[line] = token

    @rule(unit=st.integers(0, 2), line=st.integers(0, LINES - 1))
    def flush(self, unit, line):
        name = self.units[unit % len(self.units)]
        board = self.system.controllers[name]
        if hasattr(board, "flush_line"):
            board.flush_line(line)

    @rule(unit=st.integers(0, 2), line=st.integers(0, LINES - 1))
    def clean(self, unit, line):
        name = self.units[unit % len(self.units)]
        board = self.system.controllers[name]
        if hasattr(board, "clean_line"):
            board.clean_line(line)

    @invariant()
    def moesi_invariants_hold(self):
        if not hasattr(self, "system"):
            return
        violations = self.system.check_coherence()
        assert not violations, violations


CoherentSystemMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)

TestCoherentSystemMachine = CoherentSystemMachine.TestCase


class HierarchyMachine(RuleBasedStateMachine):
    """The same idea over a 2x2 cluster hierarchy."""

    @initialize()
    def build(self):
        from repro.hierarchy import HierarchicalSystem

        self.system = HierarchicalSystem.grid(2, 2)
        self.units = list(self.system.controllers)
        self.oracle: dict[int, int] = {}

    @rule(unit=st.integers(0, 3), line=st.integers(0, LINES - 1))
    def read(self, unit, line):
        name = self.units[unit % len(self.units)]
        self.system.read(name, line * LINE_SIZE)  # oracle-checked inside

    @rule(unit=st.integers(0, 3), line=st.integers(0, LINES - 1))
    def write(self, unit, line):
        name = self.units[unit % len(self.units)]
        self.system.write(name, line * LINE_SIZE)

    @invariant()
    def hierarchy_invariants_hold(self):
        if not hasattr(self, "system"):
            return
        problems = self.system.check_coherence()
        assert not problems, problems


HierarchyMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)

TestHierarchyMachine = HierarchyMachine.TestCase

"""Tests for the MOESI state model (paper section 3.1, Figures 3-4)."""

import pytest

from repro.core.states import (
    INTERVENIENT_STATES,
    NON_EXCLUSIVE_STATES,
    SOLE_COPY_STATES,
    STATE_SYNONYMS,
    UNOWNED_STATES,
    VALID_STATES,
    LineState,
    StateCharacteristics,
    parse_state,
    state_from_characteristics,
    states_holding_copy,
)

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


class TestCharacteristics:
    """The three-bit (validity, exclusiveness, ownership) decomposition."""

    @pytest.mark.parametrize(
        "state,valid,exclusive,owned",
        [
            (M, True, True, True),
            (O, True, False, True),
            (E, True, True, False),
            (S, True, False, False),
        ],
    )
    def test_valid_state_bits(self, state, valid, exclusive, owned):
        assert state.valid is valid
        assert state.exclusive is exclusive
        assert state.owned is owned

    def test_invalid_has_no_exclusiveness(self):
        assert not I.valid
        with pytest.raises(ValueError):
            _ = I.exclusive

    def test_invalid_has_no_ownership(self):
        with pytest.raises(ValueError):
            _ = I.owned

    def test_five_states_exactly(self):
        assert len(list(LineState)) == 5

    @pytest.mark.parametrize("state", list(LineState))
    def test_letter_roundtrip(self, state):
        assert parse_state(state.letter) is state

    def test_letters_spell_moesi(self):
        letters = "".join(
            s.letter for s in (M, O, E, S, I)
        )
        assert letters == "MOESI"


class TestStateFromCharacteristics:
    """Eight combinations collapse to five states (section 3.1.4)."""

    @pytest.mark.parametrize(
        "valid,exclusive,owned,expected",
        [
            (True, True, True, M),
            (True, False, True, O),
            (True, True, False, E),
            (True, False, False, S),
            (False, False, False, I),
            (False, True, False, I),
            (False, False, True, I),
            (False, True, True, I),
        ],
    )
    def test_mapping(self, valid, exclusive, owned, expected):
        assert state_from_characteristics(valid, exclusive, owned) is expected

    def test_roundtrip_for_valid_states(self):
        for state in VALID_STATES:
            assert (
                state_from_characteristics(
                    True, state.exclusive, state.owned
                )
                is state
            )


class TestStatePairs:
    """Figure 4's four pairwise groupings."""

    def test_intervenient_pair(self):
        assert INTERVENIENT_STATES == {M, O}

    def test_sole_copy_pair(self):
        assert SOLE_COPY_STATES == {M, E}

    def test_unowned_pair(self):
        assert UNOWNED_STATES == {E, S}

    def test_non_exclusive_pair(self):
        assert NON_EXCLUSIVE_STATES == {O, S}

    @pytest.mark.parametrize("state", [M, O])
    def test_intervenient_predicate(self, state):
        assert state.intervenient

    @pytest.mark.parametrize("state", [E, S, I])
    def test_not_intervenient_predicate(self, state):
        assert not state.intervenient

    @pytest.mark.parametrize("state", [M, E])
    def test_sole_copy_predicate(self, state):
        assert state.sole_copy

    @pytest.mark.parametrize("state", [O, S])
    def test_must_announce_writes(self, state):
        """S and O data require a bus message before local modification."""
        assert state.must_announce_writes

    @pytest.mark.parametrize("state", [M, E, I])
    def test_silent_write_states(self, state):
        assert not state.must_announce_writes

    def test_pairs_cover_all_valid_states(self):
        union = INTERVENIENT_STATES | SOLE_COPY_STATES | UNOWNED_STATES
        assert union == VALID_STATES


class TestSynonyms:
    """The paper's three equivalent naming schemes."""

    def test_modified_synonyms(self):
        assert STATE_SYNONYMS[M] == (
            "Modified",
            "Exclusive modified",
            "Exclusive owned",
        )

    def test_owned_synonyms(self):
        assert STATE_SYNONYMS[O] == (
            "Owned",
            "Shareable modified",
            "Shareable owned",
        )

    @pytest.mark.parametrize("state", list(LineState))
    def test_parse_all_synonyms(self, state):
        for name in STATE_SYNONYMS[state]:
            assert parse_state(name) is state

    def test_parse_case_insensitive(self):
        assert parse_state("m") is M
        assert parse_state("SHAREABLE") is S

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown MOESI state"):
            parse_state("F")


class TestHelpers:
    def test_states_holding_copy(self):
        assert states_holding_copy([M, I, S, I, E]) == [M, S, E]

    def test_characteristics_equality_and_hash(self):
        a = StateCharacteristics(True, False, True)
        b = StateCharacteristics(True, False, True)
        assert a == b and hash(a) == hash(b)
        assert a != StateCharacteristics(True, True, True)

    def test_str_is_letter(self):
        assert str(M) == "M" and str(I) == "I"

"""The probabilistic ([Dubo82]-style) synthetic workload generator."""

import pytest

from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.trace import Op


class TestConfigValidation:
    @pytest.mark.parametrize("field", ["p_shared", "p_write", "locality"])
    def test_probabilities_bounded(self, field):
        with pytest.raises(ValueError):
            SyntheticConfig(**{field: 1.5})

    def test_processor_count_positive(self):
        with pytest.raises(ValueError):
            SyntheticConfig(processors=0)

    def test_skew_at_least_one(self):
        with pytest.raises(ValueError):
            SyntheticConfig(sharing_skew=0.5)

    def test_unit_ids(self):
        assert SyntheticConfig(processors=2).unit_ids() == ["cpu0", "cpu1"]


class TestAddressMap:
    def test_shared_and_private_disjoint(self):
        config = SyntheticConfig(shared_blocks=4, private_blocks=8,
                                 processors=2, line_size=32)
        workload = SyntheticWorkload(config)
        shared = {workload.shared_address(b) for b in range(4)}
        private = {
            workload.private_address(p, b)
            for p in range(2)
            for b in range(8)
        }
        assert shared.isdisjoint(private)

    def test_private_regions_per_processor_disjoint(self):
        config = SyntheticConfig(processors=3)
        workload = SyntheticWorkload(config)
        regions = [
            {workload.private_address(p, b) for b in range(config.private_blocks)}
            for p in range(3)
        ]
        assert regions[0].isdisjoint(regions[1])
        assert regions[1].isdisjoint(regions[2])

    def test_out_of_range_rejected(self):
        workload = SyntheticWorkload(SyntheticConfig())
        with pytest.raises(ValueError):
            workload.shared_address(999)
        with pytest.raises(ValueError):
            workload.private_address(0, 999)


class TestGeneration:
    def test_reproducible_given_seed(self):
        config = SyntheticConfig()
        a = SyntheticWorkload(config, seed=4).trace(500)
        b = SyntheticWorkload(config, seed=4).trace(500)
        assert a.records == b.records

    def test_different_seeds_differ(self):
        config = SyntheticConfig()
        a = SyntheticWorkload(config, seed=1).trace(500)
        b = SyntheticWorkload(config, seed=2).trace(500)
        assert a.records != b.records

    def test_round_robin_interleaving(self):
        config = SyntheticConfig(processors=3)
        trace = SyntheticWorkload(config).trace(9)
        units = [r.unit for r in trace]
        assert units == ["cpu0", "cpu1", "cpu2"] * 3

    def test_write_fraction_approximates_p_write(self):
        config = SyntheticConfig(p_write=0.3)
        trace = SyntheticWorkload(config, seed=0).trace(6000)
        assert trace.write_fraction() == pytest.approx(0.3, abs=0.03)

    def test_shared_fraction_approximates_p_shared(self):
        config = SyntheticConfig(p_shared=0.25, shared_blocks=8,
                                 line_size=32)
        workload = SyntheticWorkload(config, seed=0)
        trace = workload.trace(6000)
        shared_limit = config.shared_blocks * config.line_size
        shared = sum(1 for r in trace if r.address < shared_limit)
        assert shared / len(trace) == pytest.approx(0.25, abs=0.03)

    def test_skew_concentrates_on_hot_blocks(self):
        config = SyntheticConfig(
            p_shared=1.0, shared_blocks=8, sharing_skew=2.5, locality=0.0
        )
        trace = SyntheticWorkload(config, seed=0).trace(4000)
        block0 = sum(1 for r in trace if r.address == 0)
        block7 = sum(
            1 for r in trace if r.address == 7 * config.line_size
        )
        assert block0 > 5 * max(block7, 1)

    def test_locality_repeats_blocks(self):
        sticky = SyntheticConfig(p_shared=0.0, locality=0.95,
                                 private_blocks=64)
        loose = SyntheticConfig(p_shared=0.0, locality=0.0,
                                private_blocks=64)

        def repeat_rate(config):
            trace = SyntheticWorkload(config, seed=3).trace(2000)
            repeats = sum(
                1
                for a, b in zip(trace.records, trace.records[1:])
                if a.unit == b.unit and a.address == b.address
            )
            return repeats

        # With one processor the consecutive-same-unit pairs exist; use
        # processors=1 variants for a clean comparison.
        assert repeat_rate(
            SyntheticConfig(processors=1, p_shared=0.0, locality=0.9)
        ) > repeat_rate(
            SyntheticConfig(processors=1, p_shared=0.0, locality=0.0)
        )

    def test_streams_keyed_by_unit(self):
        config = SyntheticConfig(processors=2)
        streams = SyntheticWorkload(config).streams()
        assert set(streams) == {"cpu0", "cpu1"}
        op, address = next(streams["cpu0"])
        assert op in (Op.READ, Op.WRITE) and address >= 0

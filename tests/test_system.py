"""The system builder, runtime coherence checking, and reporting."""

import pytest

from repro.system.system import BoardSpec, CoherenceError, System
from repro.workloads.patterns import ping_pong, producer_consumer
from repro.workloads.trace import Op, ReferenceRecord, Trace


class TestConstruction:
    def test_homogeneous_builder(self):
        system = System.homogeneous("moesi", 3)
        assert sorted(system.controllers) == ["cpu0", "cpu1", "cpu2"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one board"):
            System([])

    def test_line_size_mismatch_rejected(self):
        """Section 5.1: the system standardizes one line size."""
        with pytest.raises(ValueError, match="line size mismatch"):
            System(
                [
                    BoardSpec("a", line_size=32),
                    BoardSpec("b", line_size=64),
                ]
            )

    def test_protocol_instances_accepted(self):
        from repro.protocols.moesi import MoesiProtocol

        system = System([BoardSpec("a", MoesiProtocol())])
        assert "a" in system.controllers

    def test_non_caching_board(self):
        from repro.cache.controller import NonCachingMaster

        system = System(
            [BoardSpec("io", "non-caching"), BoardSpec("cpu", "moesi")]
        )
        assert isinstance(system.controllers["io"], NonCachingMaster)


class TestVersionedAccess:
    def test_read_of_unwritten_line_returns_zero(self):
        system = System.homogeneous("moesi", 2)
        assert system.read("cpu0", 0) == 0

    def test_write_allocates_monotonic_versions(self):
        system = System.homogeneous("moesi", 2)
        v1 = system.write("cpu0", 0)
        v2 = system.write("cpu1", 0)
        assert v2 > v1

    def test_read_sees_last_write_across_cpus(self):
        system = System.homogeneous("moesi", 3)
        token = system.write("cpu2", 64)
        assert system.read("cpu0", 64) == token

    def test_sub_line_addresses_share_a_version(self):
        system = System.homogeneous("moesi", 2, line_size=32)
        token = system.write("cpu0", 35)
        assert system.read("cpu1", 40) == token  # same 32-byte line


class TestTraceRuns:
    @pytest.mark.parametrize(
        "protocol",
        ["moesi", "berkeley", "dragon", "write-through"],
    )
    def test_patterns_run_clean(self, protocol):
        system = System.homogeneous(protocol, 4)
        system.run_trace(ping_pong(rounds=40, processors=4))
        assert not system.check_coherence()

    @pytest.mark.parametrize("protocol", ["illinois", "write-once", "firefly"])
    def test_foreign_homogeneous_run_clean(self, protocol):
        system = System.homogeneous(protocol, 4)
        system.run_trace(producer_consumer(items=20, consumers=3))
        assert not system.check_coherence()

    def test_apply_routes_ops(self):
        system = System.homogeneous("moesi", 2)
        system.apply(ReferenceRecord("cpu0", Op.WRITE, 0))
        system.apply(ReferenceRecord("cpu1", Op.READ, 0))
        assert system.accesses == 2


class TestCoherenceChecking:
    def test_stale_read_detected(self):
        """Bypass the protocol to corrupt a copy; the next read trips."""
        system = System.homogeneous("moesi", 2)
        system.write("cpu0", 0)
        system.read("cpu1", 0)
        # Corrupt cpu1's copy behind the protocol's back.
        controller = system.controllers["cpu1"]
        controller.cache.lookup(0)[2].value = 12345
        with pytest.raises(CoherenceError):
            system.read("cpu1", 0)

    def test_invariant_violation_detected(self):
        system = System.homogeneous("moesi", 2)
        system.write("cpu0", 0)
        # Forge a second owner.
        from repro.core.states import LineState

        other = system.controllers["cpu1"]
        other.cache.fill(0, LineState.MODIFIED, 1)
        violations = system.check_coherence([0])
        assert violations

    def test_check_disabled_skips_validation(self):
        system = System.homogeneous("moesi", 2, label="unchecked")
        system.check = False
        system.write("cpu0", 0)
        controller = system.controllers["cpu0"]
        controller.cache.lookup(0)[2].value = 999
        system.read("cpu0", 0)  # no exception

    def test_line_view_reports_freshness(self):
        system = System.homogeneous("moesi", 2)
        system.write("cpu0", 0)
        view = system.line_view(0)
        assert view.owners and view.owners[0].fresh
        assert not view.memory_fresh  # read-for-ownership left it stale


class TestReporting:
    def test_report_aggregates(self):
        system = System.homogeneous("moesi", 2)
        system.run_trace(ping_pong(rounds=20))
        report = system.report()
        assert report.accesses == 40  # 20 rounds x (write + read)
        assert report.bus.transactions > 0
        assert 0 <= report.miss_ratio <= 1

    def test_report_row_keys(self):
        system = System.homogeneous("moesi", 2)
        system.write("cpu0", 0)
        row = system.report().row()
        for key in ("system", "accesses", "miss_ratio", "bus_txns"):
            assert key in row

    def test_bus_utilization_requires_elapsed(self):
        system = System.homogeneous("moesi", 2)
        assert system.report().bus_utilization is None
        assert system.report(elapsed_ns=1e6).bus_utilization is not None

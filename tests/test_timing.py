"""Bus timing model (sections 2.2-2.3)."""

import pytest

from repro.bus.timing import DEFAULT_TIMING, BusTiming
from repro.core.actions import BusOp
from repro.core.signals import MasterSignals


class TestTransactionCosts:
    def test_address_only_is_cheapest(self):
        t = DEFAULT_TIMING
        addr_only = t.transaction_ns(BusOp.NONE, MasterSignals(ca=True, im=True))
        read = t.transaction_ns(BusOp.READ, MasterSignals(ca=True))
        assert addr_only < read
        assert addr_only == t.arbitration_ns + t.address_cycle_ns

    def test_broadcast_surcharge_applied(self):
        """Broadcast transfers pay the 25 ns wired-OR penalty."""
        t = DEFAULT_TIMING
        plain = t.transaction_ns(
            BusOp.WRITE, MasterSignals(ca=True, im=True)
        )
        broadcast = t.transaction_ns(
            BusOp.WRITE, MasterSignals(ca=True, im=True, bc=True)
        )
        assert broadcast - plain == t.broadcast_surcharge_ns == 25.0

    def test_connector_makes_transfer_broadcast(self):
        t = DEFAULT_TIMING
        plain = t.transaction_ns(BusOp.WRITE, MasterSignals(ca=True, im=True))
        with_connector = t.transaction_ns(
            BusOp.WRITE, MasterSignals(ca=True, im=True), connectors=1
        )
        assert with_connector - plain == t.broadcast_surcharge_ns

    def test_intervention_faster_than_memory(self):
        t = DEFAULT_TIMING
        from_memory = t.transaction_ns(BusOp.READ, MasterSignals(ca=True))
        from_cache = t.transaction_ns(
            BusOp.READ, MasterSignals(ca=True), intervened=True
        )
        assert from_cache < from_memory

    def test_cache_master_moves_full_line(self):
        t = BusTiming(words_per_line=8)
        line = t.transaction_ns(BusOp.READ, MasterSignals(ca=True))
        word = t.transaction_ns(BusOp.READ, MasterSignals())
        assert line - word == 7 * t.data_beat_ns

    def test_explicit_word_count_overrides(self):
        t = DEFAULT_TIMING
        two = t.transaction_ns(BusOp.READ, MasterSignals(ca=True), words=2)
        four = t.transaction_ns(BusOp.READ, MasterSignals(ca=True), words=4)
        assert four - two == 2 * t.data_beat_ns

    def test_write_has_no_access_latency(self):
        t = DEFAULT_TIMING
        write = t.transaction_ns(BusOp.WRITE, MasterSignals(ca=True, im=True))
        read = t.transaction_ns(BusOp.READ, MasterSignals(ca=True))
        assert read - write == t.memory_latency_ns

    def test_abort_cost(self):
        t = DEFAULT_TIMING
        assert t.abort_ns() == (
            t.arbitration_ns + t.address_cycle_ns + t.abort_penalty_ns
        )

    def test_frozen_dataclass(self):
        with pytest.raises(Exception):
            DEFAULT_TIMING.data_beat_ns = 1.0  # type: ignore[misc]

    def test_custom_timing_used(self):
        t = BusTiming(arbitration_ns=0.0, address_cycle_ns=10.0,
                      memory_latency_ns=100.0, data_beat_ns=10.0,
                      words_per_line=1)
        read = t.transaction_ns(BusOp.READ, MasterSignals(ca=True))
        assert read == 10.0 + 100.0 + 10.0

"""Trace records, containers, and file I/O."""

import io

import pytest

from repro.workloads.trace import Op, ReferenceRecord, Trace


class TestRecord:
    def test_line_roundtrip(self):
        record = ReferenceRecord("cpu3", Op.WRITE, 0x1F40)
        assert ReferenceRecord.from_line(record.to_line()) == record

    def test_parses_decimal_and_hex(self):
        assert ReferenceRecord.from_line("a R 64").address == 64
        assert ReferenceRecord.from_line("a R 0x40").address == 64

    def test_lowercase_op_accepted(self):
        assert ReferenceRecord.from_line("a w 0").op is Op.WRITE

    @pytest.mark.parametrize(
        "line", ["too few", "a X 0", "a R -5", "a R 0 extra"]
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(ValueError):
            ReferenceRecord.from_line(line)


class TestTrace:
    def test_units_in_first_appearance_order(self):
        trace = Trace(
            [
                ReferenceRecord("b", Op.READ, 0),
                ReferenceRecord("a", Op.READ, 0),
                ReferenceRecord("b", Op.WRITE, 0),
            ]
        )
        assert trace.units() == ["b", "a"]

    def test_write_fraction(self):
        trace = Trace(
            [
                ReferenceRecord("a", Op.READ, 0),
                ReferenceRecord("a", Op.WRITE, 0),
            ]
        )
        assert trace.write_fraction() == 0.5
        assert Trace().write_fraction() == 0.0

    def test_addresses(self):
        trace = Trace(
            [
                ReferenceRecord("a", Op.READ, 0),
                ReferenceRecord("a", Op.READ, 64),
                ReferenceRecord("a", Op.READ, 0),
            ]
        )
        assert trace.addresses() == {0, 64}

    def test_len_and_indexing(self):
        trace = Trace([ReferenceRecord("a", Op.READ, 0)])
        assert len(trace) == 1
        assert trace[0].unit == "a"


class TestIO:
    def test_dump_parse_roundtrip(self):
        original = Trace(
            [
                ReferenceRecord("cpu0", Op.READ, 0x40),
                ReferenceRecord("cpu1", Op.WRITE, 0x80),
            ]
        )
        buffer = io.StringIO()
        original.dump(buffer)
        parsed = Trace.parse(buffer.getvalue().splitlines())
        assert parsed.records == original.records

    def test_comments_and_blanks_skipped(self):
        text = ["# header", "", "cpu0 R 0x0", "   ", "# trailing"]
        trace = Trace.parse(text)
        assert len(trace) == 1

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        original = Trace([ReferenceRecord("cpu0", Op.WRITE, 96)])
        original.save(path)
        assert Trace.load(path).records == original.records

"""The bus-analyzer trace pretty-printer."""

from repro.analysis.tracelog import format_bus_trace, trace_rows
from repro.bus.futurebus import Futurebus
from repro.cache.cache import SetAssociativeCache
from repro.cache.controller import CacheController
from repro.memory.main_memory import MainMemory
from repro.protocols.registry import make_protocol


def _traced_rig():
    memory = MainMemory()
    log = []
    bus = Futurebus(memory, trace=log)
    a = CacheController("A", make_protocol("moesi"),
                        SetAssociativeCache(), bus)
    b = CacheController("B", make_protocol("moesi"),
                        SetAssociativeCache(), bus)
    return log, a, b, memory


class TestTraceRows:
    def test_read_miss_recorded(self):
        log, a, b, _ = _traced_rig()
        a.read(0)
        (row,) = trace_rows(log)
        assert row["master"] == "A"
        assert row["col"] == 5
        assert row["op"] == "read"
        assert row["supplier"] == "memory"

    def test_intervention_visible(self):
        log, a, b, _ = _traced_rig()
        a.write(0, 1)
        log.clear()
        b.read(0)
        (row,) = trace_rows(log)
        assert row["supplier"] == "A"
        assert "DI" in row["responses"]
        assert "CH" in row["responses"]

    def test_broadcast_write_shows_connectors(self):
        log, a, b, _ = _traced_rig()
        a.read(0)
        b.read(0)
        log.clear()
        b.write(0, 2)
        (row,) = trace_rows(log)
        assert row["col"] == 8
        assert row["connectors"] == "A"

    def test_abort_retries_counted(self):
        from repro.cache.cache import SetAssociativeCache
        memory = MainMemory()
        log = []
        bus = Futurebus(memory, trace=log)
        a = CacheController("A", make_protocol("illinois"),
                            SetAssociativeCache(), bus)
        b = CacheController("B", make_protocol("illinois"),
                            SetAssociativeCache(), bus)
        a.write(0, 1)
        log.clear()
        b.read(0)
        rows = trace_rows(log)
        # The push appears as its own transaction; the retried read
        # reports one retry.
        assert any(r["retries"] == 1 for r in rows)
        assert any(r["master"] == "A" and r["op"] == "write" for r in rows)

    def test_addr_only_invalidate(self):
        log, a, b, _ = _traced_rig()
        a.write(0, 1)
        b.read(0)
        log.clear()
        a.write(0, 2)  # O-write, preferred broadcast... force invalidate:
        # With the preferred policy this is a broadcast; assert whatever
        # happened is labelled consistently.
        (row,) = trace_rows(log)
        assert row["op"] in ("write", "addr-only")


class TestFormatting:
    def test_format_contains_headers(self):
        log, a, b, _ = _traced_rig()
        a.read(0)
        text = format_bus_trace(log, "capture")
        assert text.splitlines()[0] == "capture"
        for header in ("master", "signals", "col", "responses"):
            assert header in text.splitlines()[1]

    def test_empty_log(self):
        assert format_bus_trace([]) == "Bus transaction trace"

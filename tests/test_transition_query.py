"""Reachable-transition queries over the explorer's canonical tables."""

import pytest

from repro.core.events import BusEvent, LocalEvent
from repro.core.states import LineState
from repro.protocols.registry import make_protocol
from repro.verify.explorer import (
    ClassTransitionQuery,
    ProtocolTransitionQuery,
    TransitionQuery,
)

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


class TestClassQuery:
    def test_every_protocol_cell_is_reachable(self):
        """A class member's own table is a subset of the closure."""
        query = ClassTransitionQuery()
        protocol = make_protocol("moesi")
        for state in protocol.states:
            for event in LocalEvent:
                for action in protocol.local_cell(state, event):
                    assert query.permits_local(state, event, action), (
                        f"({state}, {event}) -> {action.notation()}"
                    )

    def test_kind_narrowing_blocks_copy_back_misses(self):
        """A non-caching board may not take the allocate-and-own miss."""
        query = ClassTransitionQuery(make_protocol("non-caching").kind)
        cb_action = make_protocol("moesi").local_cell(I, LocalEvent.WRITE)[0]
        assert not query.permits_local(I, LocalEvent.WRITE, cb_action)

    def test_kind_narrowing_passes_shared_hit_rows(self):
        """Hit rows are written once for all kinds; the narrowed query
        must fall back to the shared entry instead of flagging it."""
        wt = make_protocol("write-through-alloc")
        query = ClassTransitionQuery(wt.kind)
        (action,) = wt.local_cell(S, LocalEvent.READ)
        assert query.permits_local(S, LocalEvent.READ, action)

    def test_unfiltered_query_spans_all_kinds(self):
        query = ClassTransitionQuery(None)
        for name in ("moesi", "write-through", "non-caching"):
            protocol = make_protocol(name)
            for state in protocol.states:
                for event in LocalEvent:
                    for action in protocol.local_cell(state, event):
                        assert query.permits_local(state, event, action)

    def test_reachable_sets_nonempty_for_live_cells(self):
        query = ClassTransitionQuery()
        assert query.reachable_local(I, LocalEvent.READ)
        assert query.reachable_snoop(M, BusEvent.CACHE_READ)

    def test_permits_dispatch(self):
        query = ClassTransitionQuery()
        action = make_protocol("moesi").local_cell(I, LocalEvent.READ)[0]
        assert query.permits("local", I, LocalEvent.READ, action)
        with pytest.raises(ValueError, match="unknown transition side"):
            query.permits("sideways", I, LocalEvent.READ, action)

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TransitionQuery().permits_local(I, LocalEvent.READ, None)


class TestProtocolQuery:
    def test_own_cells_reachable(self):
        query = ProtocolTransitionQuery("illinois")
        protocol = make_protocol("illinois")
        for state in protocol.states:
            for event in LocalEvent:
                for action in protocol.local_cell(state, event):
                    assert query.permits_local(state, event, action)
            for event in BusEvent:
                for action in protocol.snoop_cell(state, event):
                    assert query.permits_snoop(state, event, action)

    def test_foreign_table_rejects_class_only_behaviour(self):
        """Illinois has no O state: landing in O on a snooped read is a
        class behaviour its own table must reject."""
        query = ProtocolTransitionQuery("illinois")
        moesi = make_protocol("moesi")
        deviant = next(
            a for a in moesi.snoop_cell(M, BusEvent.CACHE_READ)
            if a.next_state is O
        )
        assert not query.permits_snoop(M, BusEvent.CACHE_READ, deviant)

    def test_mutated_cell_detected(self):
        """The exact acceptance-criteria deviation: an S copy surviving a
        snooped read-for-modify is not in Illinois's Table 6."""
        from repro.fuzz.scenario import resolve_spec

        query = ProtocolTransitionQuery("illinois")
        bug = resolve_spec("bug:illinois-silent-im")
        (action,) = bug.snoop_cell(S, BusEvent.CACHE_READ_FOR_MODIFY)
        assert not query.permits_snoop(
            S, BusEvent.CACHE_READ_FOR_MODIFY, action
        )

    def test_accepts_protocol_instance(self):
        protocol = make_protocol("firefly")
        query = ProtocolTransitionQuery(protocol)
        assert query.protocol is protocol

"""Exhaustive compiled-vs-dict equivalence for the table compiler.

The hot paths serve transitions from integer-indexed flat tuples
(:mod:`repro.core.transitions` compiler section); these tests check every
single (state, event) cell of every lowering against its dict-based
source:

* the MOESI-class relaxation closure (Tables 1/2 plus relaxations 9-12),
* every registered protocol's cell tables (including the paper's
  Tables 3-7 via Berkeley, Dragon, Write-Once, Illinois and Firefly),
* the :class:`TableProtocol` deterministic fast path against the dict
  fallback path, action by action and error by error,
* and a fuzz seed sweep proving scenario outcomes are identical with the
  fast path enabled and disabled.
"""

from __future__ import annotations

import pytest

from repro.core.events import ALL_BUS_EVENTS, ALL_LOCAL_EVENTS
from repro.core.protocol import IllegalTransitionError, TableProtocol
from repro.core.states import LineState
from repro.core.transitions import (
    N_BUS_EVENTS,
    N_LOCAL_EVENTS,
    N_STATES,
    TableCompilationError,
    compile_cells,
    compiled_class_cells,
    set_fast_tables,
    shared_class_table,
    verify_compiled,
)
from repro.protocols.compiled import (
    compile_protocol,
    compile_registry,
    compiled_table_report,
)
from repro.protocols.registry import PROTOCOL_FACTORIES, make_protocol

ALL_LOCAL_PAIRS = [
    (state, event) for state in LineState for event in ALL_LOCAL_EVENTS
]
ALL_SNOOP_PAIRS = [
    (state, event) for state in LineState for event in ALL_BUS_EVENTS
]


@pytest.fixture
def fast_tables_restored():
    """Restore the global fast-path toggle after a test flips it."""
    from repro.core import transitions

    previous = transitions.fast_tables_enabled()
    yield
    set_fast_tables(previous)


class TestInterning:
    """The integer codes the flat tables are indexed by."""

    def test_state_codes_are_enum_order(self):
        assert [state.code for state in LineState] == list(range(N_STATES))

    def test_local_event_codes_match_column_order(self):
        assert [event.code for event in ALL_LOCAL_EVENTS] == list(
            range(N_LOCAL_EVENTS)
        )

    def test_bus_event_codes_match_column_order(self):
        assert [event.code for event in ALL_BUS_EVENTS] == list(
            range(N_BUS_EVENTS)
        )

    def test_local_index_arithmetic_is_bijective(self):
        indices = {
            state.code * N_LOCAL_EVENTS + event.code
            for state, event in ALL_LOCAL_PAIRS
        }
        assert indices == set(range(N_STATES * N_LOCAL_EVENTS))

    def test_snoop_index_arithmetic_is_bijective(self):
        indices = {
            state.code * N_BUS_EVENTS + event.code
            for state, event in ALL_SNOOP_PAIRS
        }
        assert indices == set(range(N_STATES * N_BUS_EVENTS))

    def test_valid_attribute_survived_interning(self):
        assert not LineState.INVALID.valid
        assert all(
            state.valid for state in LineState if state is not LineState.INVALID
        )


class TestClassClosureCompiled:
    """The compiled relaxation closure against the dict-based table."""

    def test_every_local_cell_matches_closure(self):
        table = shared_class_table()
        cells = compiled_class_cells()
        for state, event in ALL_LOCAL_PAIRS:
            expected = tuple(
                sorted(
                    table.local_action_set(state, event),
                    key=lambda a: a.notation(),
                )
            )
            assert cells.local_cell(state, event) == expected, (state, event)

    def test_every_snoop_cell_matches_closure(self):
        table = shared_class_table()
        cells = compiled_class_cells()
        for state, event in ALL_SNOOP_PAIRS:
            expected = tuple(
                sorted(
                    table.snoop_action_set(state, event),
                    key=lambda a: a.notation(),
                )
            )
            assert cells.snoop_cell(state, event) == expected, (state, event)

    def test_compiled_class_cells_is_shared(self):
        assert compiled_class_cells() is compiled_class_cells()

    def test_verify_rejects_cross_wired_tables(self):
        """verify_compiled must catch a table compiled from a different
        source -- the compile-then-verify safety net."""
        berkeley = make_protocol("berkeley")
        dragon = make_protocol("dragon")
        cells = compile_protocol(berkeley)
        with pytest.raises(TableCompilationError):
            verify_compiled(cells, dragon.local_cell, dragon.snoop_cell)

    def test_compile_without_verify_skips_the_check(self):
        berkeley = make_protocol("berkeley")
        cells = compile_cells(
            berkeley.local_cell, berkeley.snoop_cell, verify=False
        )
        verify_compiled(cells, berkeley.local_cell, berkeley.snoop_cell)


class TestRegistryProtocolsCompiled:
    """Every registered protocol, every cell."""

    @pytest.mark.parametrize("name", sorted(PROTOCOL_FACTORIES))
    def test_compiled_cells_match_dict_tables(self, name):
        protocol = make_protocol(name)
        cells = compile_protocol(protocol)
        for state, event in ALL_LOCAL_PAIRS:
            assert cells.local_cell(state, event) == tuple(
                protocol.local_cell(state, event)
            ), (name, state, event)
        for state, event in ALL_SNOOP_PAIRS:
            assert cells.snoop_cell(state, event) == tuple(
                protocol.snoop_cell(state, event)
            ), (name, state, event)

    @pytest.mark.parametrize("name", sorted(PROTOCOL_FACTORIES))
    def test_fast_path_equals_dict_path_cell_by_cell(
        self, name, fast_tables_restored
    ):
        """A compiled instance and a dict-driven instance must agree on
        every action and every IllegalTransitionError."""
        protocol = make_protocol(name)
        if not isinstance(protocol, TableProtocol):
            pytest.skip("policy-driven protocol: no deterministic fast path")
        set_fast_tables(True)
        fast = make_protocol(name)
        fast._compile_fast_tables()  # compile while the toggle is on
        set_fast_tables(False)
        slow = make_protocol(name)
        slow._compile_fast_tables()  # pin the dict path while it is off

        def outcome(instance, method, state, event):
            try:
                return getattr(instance, method)(state, event)
            except IllegalTransitionError:
                return "--"

        for state, event in ALL_LOCAL_PAIRS:
            assert outcome(fast, "local_action", state, event) == outcome(
                slow, "local_action", state, event
            ), (name, state, event)
        for state, event in ALL_SNOOP_PAIRS:
            assert outcome(fast, "snoop_action", state, event) == outcome(
                slow, "snoop_action", state, event
            ), (name, state, event)
        assert fast._fast_tables not in (None, False)
        assert slow._fast_tables is False

    def test_compile_registry_covers_every_protocol(self):
        compiled = compile_registry()
        assert sorted(compiled) == sorted(PROTOCOL_FACTORIES)

    def test_compiled_table_report_all_ok(self):
        rows = compiled_table_report()
        assert len(rows) == len(PROTOCOL_FACTORIES)
        assert all(row["ok"] for row in rows)
        assert any(row["deterministic"] for row in rows)


class TestFuzzDifferentialEquivalence:
    """Scenario outcomes must not depend on the fast-path toggle."""

    SEEDS = range(10)

    @staticmethod
    def _outcomes():
        from repro.fuzz.runner import run_scenario
        from repro.fuzz.scenario import generate_scenario

        outcomes = []
        for seed in TestFuzzDifferentialEquivalence.SEEDS:
            result = run_scenario(generate_scenario(seed))
            outcomes.append(
                (
                    seed,
                    result.steps_run,
                    result.transitions_checked,
                    result.ok,
                    str(result.failure),
                )
            )
        return outcomes

    def test_seed_sweep_identical_compiled_vs_uncompiled(
        self, fast_tables_restored
    ):
        set_fast_tables(True)
        compiled = self._outcomes()
        set_fast_tables(False)
        uncompiled = self._outcomes()
        assert compiled == uncompiled

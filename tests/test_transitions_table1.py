"""Table 1 (local events) cell-by-cell: the class's local transitions must
match the paper exactly.  Each test pins one row of the paper's table."""

import pytest

from repro.analysis.paper_data import TABLE1_LOCAL, canonical_cell
from repro.core.actions import BusOp, MasterKind
from repro.core.events import ALL_LOCAL_EVENTS, LocalEvent
from repro.core.states import LineState
from repro.core.transitions import LOCAL_TABLE, local_choices

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)

_EVENT_NAMES = {
    LocalEvent.READ: "Read",
    LocalEvent.WRITE: "Write",
    LocalEvent.PASS: "Pass",
    LocalEvent.FLUSH: "Flush",
}


def _cell_notations(state, event):
    return [a.notation() for a in LOCAL_TABLE[(state, event)]]


class TestEveryCellAgainstPaper:
    """Exhaustive diff: 5 states x 4 events."""

    @pytest.mark.parametrize("state", list(LineState))
    @pytest.mark.parametrize("event", ALL_LOCAL_EVENTS)
    def test_cell(self, state, event):
        ours = [canonical_cell(n) for n in _cell_notations(state, event)]
        paper = [
            canonical_cell(entry)
            for entry in TABLE1_LOCAL[(state.value, _EVENT_NAMES[event])]
        ]
        assert ours == paper


class TestHitBehaviour:
    """Reads and writes that need no bus."""

    @pytest.mark.parametrize("state", [M, O, E, S])
    def test_read_hit_is_silent_and_stays(self, state):
        (action,) = LOCAL_TABLE[(state, LocalEvent.READ)]
        assert action.is_silent and action.next_state is state

    def test_write_hit_m_silent(self):
        (action,) = LOCAL_TABLE[(M, LocalEvent.WRITE)]
        assert action.is_silent and action.next_state is M

    def test_write_hit_e_silently_takes_m(self):
        """Sole copy: no warning needed (section 3.1, E/M pair)."""
        (action,) = LOCAL_TABLE[(E, LocalEvent.WRITE)]
        assert action.is_silent and action.next_state is M


class TestSharedWrites:
    """O/S writes must announce on the bus (statement 2)."""

    @pytest.mark.parametrize("state", [O, S])
    def test_no_silent_choice(self, state):
        for action in LOCAL_TABLE[(state, LocalEvent.WRITE)]:
            assert action.uses_bus

    @pytest.mark.parametrize("state", [O, S])
    def test_preferred_is_broadcast(self, state):
        preferred = LOCAL_TABLE[(state, LocalEvent.WRITE)][0]
        assert preferred.signals.bc and preferred.bus_op is BusOp.WRITE

    @pytest.mark.parametrize("state", [O, S])
    def test_invalidate_alternative_is_address_only(self, state):
        alternative = LOCAL_TABLE[(state, LocalEvent.WRITE)][1]
        assert alternative.bus_op is BusOp.NONE
        assert alternative.signals.im and alternative.signals.ca
        assert alternative.next_state is M


class TestWriteBacks:
    """Pass (3) and flush (4) of owned data."""

    def test_pass_from_m_keeps_copy_clean(self):
        (action,) = LOCAL_TABLE[(M, LocalEvent.PASS)]
        assert action.next_state is E
        assert action.bus_op is BusOp.WRITE
        assert action.signals.ca and action.bc_dont_care

    def test_pass_from_o_listens_for_sharers(self):
        (action,) = LOCAL_TABLE[(O, LocalEvent.PASS)]
        assert action.notation() == "CH:S/E,CA,BC?,W"

    @pytest.mark.parametrize("state", [M, O])
    def test_flush_owned_writes_back(self, state):
        (action,) = LOCAL_TABLE[(state, LocalEvent.FLUSH)]
        assert action.bus_op is BusOp.WRITE
        assert action.next_state is LineState.INVALID

    @pytest.mark.parametrize("state", [E, S])
    def test_flush_unowned_is_silent(self, state):
        (action,) = LOCAL_TABLE[(state, LocalEvent.FLUSH)]
        assert action.is_silent and action.next_state is LineState.INVALID

    @pytest.mark.parametrize("state", [E, S, I])
    def test_pass_illegal_for_clean_states(self, state):
        assert LOCAL_TABLE[(state, LocalEvent.PASS)] == ()


class TestMisses:
    def test_read_miss_preferred_lands_s_or_e(self):
        preferred = LOCAL_TABLE[(I, LocalEvent.READ)][0]
        assert preferred.notation() == "CH:S/E,CA,R"

    def test_write_miss_preferred_is_read_for_ownership(self):
        preferred = LOCAL_TABLE[(I, LocalEvent.WRITE)][0]
        assert preferred.notation() == "M,CA,IM,R"

    def test_write_miss_two_transaction_alternative(self):
        second = LOCAL_TABLE[(I, LocalEvent.WRITE)][1]
        assert second.bus_op is BusOp.READ_THEN_WRITE

    def test_flush_and_pass_of_invalid_illegal(self):
        assert LOCAL_TABLE[(I, LocalEvent.FLUSH)] == ()
        assert LOCAL_TABLE[(I, LocalEvent.PASS)] == ()


class TestKindFiltering:
    """The * / ** annotations partition each cell by board kind."""

    def test_copy_back_filter_excludes_starred(self):
        choices = local_choices(S, LocalEvent.WRITE, MasterKind.COPY_BACK)
        assert all(c.kind is MasterKind.COPY_BACK for c in choices)
        assert len(choices) == 2

    def test_write_through_write_choices(self):
        choices = local_choices(S, LocalEvent.WRITE, MasterKind.WRITE_THROUGH)
        notations = [c.notation() for c in choices]
        assert notations == ["S,IM,BC,W*", "S,IM,W*"]

    def test_write_through_read_miss(self):
        choices = local_choices(I, LocalEvent.READ, MasterKind.WRITE_THROUGH)
        assert [c.notation() for c in choices] == ["S,CA,R*"]

    def test_non_caching_read(self):
        choices = local_choices(I, LocalEvent.READ, MasterKind.NON_CACHING)
        assert [c.notation() for c in choices] == ["I,R**"]

    def test_non_caching_write_options(self):
        choices = local_choices(I, LocalEvent.WRITE, MasterKind.NON_CACHING)
        notations = [c.notation() for c in choices]
        assert notations == ["I,IM,BC,W*,**", "I,IM,W*,**"]

    def test_unfiltered_returns_everything(self):
        assert len(local_choices(I, LocalEvent.WRITE)) == 5

    def test_write_through_writes_never_assert_ca(self):
        """A WT write goes *past* the cache: columns 9/10 for snoopers."""
        for choices_state in (S, I):
            for action in local_choices(
                choices_state, LocalEvent.WRITE, MasterKind.WRITE_THROUGH
            ):
                if action.bus_op is BusOp.WRITE:
                    assert not action.signals.ca

"""Table 2 (bus events) cell-by-cell, plus the paper's statements 4-5
about intervenient and non-intervenient snoop behaviour."""

import pytest

from repro.analysis.paper_data import TABLE2_SNOOP, canonical_cell
from repro.core.actions import CH_O_OR_M
from repro.core.events import ALL_BUS_EVENTS, BusEvent
from repro.core.states import LineState
from repro.core.transitions import SNOOP_TABLE, snoop_choices

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)

COL5 = BusEvent.CACHE_READ
COL6 = BusEvent.CACHE_READ_FOR_MODIFY
COL7 = BusEvent.UNCACHED_READ
COL8 = BusEvent.CACHE_BROADCAST_WRITE
COL9 = BusEvent.UNCACHED_WRITE
COL10 = BusEvent.UNCACHED_BROADCAST_WRITE


class TestEveryCellAgainstPaper:
    """Exhaustive diff: 5 states x 6 bus events."""

    @pytest.mark.parametrize("state", list(LineState))
    @pytest.mark.parametrize("event", ALL_BUS_EVENTS)
    def test_cell(self, state, event):
        ours = [
            canonical_cell(a.notation())
            for a in SNOOP_TABLE[(state, event)]
        ]
        paper = [
            canonical_cell(entry)
            for entry in TABLE2_SNOOP[(state.value, event.note)]
        ]
        assert ours == paper


class TestIntervenientStates:
    """Statement 4: M/O holders supply, capture, or relinquish."""

    @pytest.mark.parametrize("state", [M, O])
    def test_supply_on_cache_read(self, state):
        (action,) = snoop_choices(state, COL5)
        assert action.intervenes
        assert action.next_state is O  # requester now shares
        assert action.response.ch  # "I will retain"

    @pytest.mark.parametrize("state", [M, O])
    def test_supply_then_invalidate_on_write_miss(self, state):
        (action,) = snoop_choices(state, COL6)
        assert action.intervenes and action.next_state is I

    @pytest.mark.parametrize("state", [M, O])
    def test_capture_uncached_write(self, state):
        """Column 9: the owner captures the write; memory must not."""
        (action,) = snoop_choices(state, COL9)
        assert action.intervenes
        assert action.next_state is state  # retains ownership

    def test_owner_relinquishes_on_broadcast_write(self):
        """Column 8: the broadcast writer becomes the new owner."""
        choices = snoop_choices(O, COL8)
        assert [a.notation() for a in choices] == ["S,CH,SL", "I"]
        assert not any(a.next_state in (M, O) for a in choices)

    def test_owner_must_update_on_uncached_broadcast(self):
        """Column 10 from O: no invalidate option -- the write may be
        partial, leaving memory stale for the rest of the line."""
        choices = snoop_choices(O, COL10)
        assert len(choices) == 1
        assert choices[0].next_state is O and choices[0].connects

    def test_m_stays_owner_on_uncached_broadcast(self):
        (action,) = snoop_choices(M, COL10)
        assert action.next_state is M and action.connects

    def test_o_listens_on_uncached_read(self):
        """Column 7 from O: CH:O/M -- the owner listens for other CH
        assertions to learn whether it may promote to M."""
        (action,) = snoop_choices(O, COL7)
        assert action.next_state == CH_O_OR_M
        assert action.response.ch is False  # must not assert, only listen
        assert action.intervenes

    @pytest.mark.parametrize("state", [M, E])
    def test_broadcast_write_against_exclusive_impossible(self, state):
        """Column 8 cannot occur against a sole copy (writer holds none)."""
        assert snoop_choices(state, COL8) == ()


class TestNonIntervenientStates:
    """Statement 5: S/E go to S on reads (raising CH), invalidate on
    non-broadcast writes, choose on broadcast writes."""

    @pytest.mark.parametrize("state", [E, S])
    def test_cache_read_downgrades_to_shared(self, state):
        (action,) = snoop_choices(state, COL5)
        assert action.next_state is S and action.response.ch

    def test_e_stays_on_uncached_read(self):
        """Exception in statement 5: a non-caching master takes no copy."""
        (action,) = snoop_choices(E, COL7)
        assert action.next_state is E
        assert action.response.ch is None  # nobody is listening

    def test_s_asserts_ch_on_uncached_read(self):
        """An O-state owner may be listening (CH:O/M): S must assert CH."""
        (action,) = snoop_choices(S, COL7)
        assert action.next_state is S and action.response.ch is True

    @pytest.mark.parametrize("state", [E, S])
    @pytest.mark.parametrize("event", [COL6, COL9])
    def test_invalidate_on_non_broadcast_writes(self, state, event):
        (action,) = snoop_choices(state, event)
        assert action.next_state is I
        assert not action.response.asserts_anything

    @pytest.mark.parametrize("event", [COL8, COL10])
    def test_s_update_or_invalidate_choice(self, event):
        choices = snoop_choices(S, event)
        assert [a.retains_copy for a in choices] == [True, False]
        update = choices[0]
        assert update.connects and update.response.ch


class TestInvalidRow:
    @pytest.mark.parametrize("event", ALL_BUS_EVENTS)
    def test_invalid_ignores_everything(self, event):
        (action,) = snoop_choices(I, event)
        assert action.next_state is I
        assert not action.response.asserts_anything


class TestSingleResponder:
    """At most one DI per column, across any legal state combination."""

    @pytest.mark.parametrize("event", ALL_BUS_EVENTS)
    def test_only_owner_states_intervene(self, event):
        for state in (E, S, I):
            for action in snoop_choices(state, event):
                assert not action.intervenes

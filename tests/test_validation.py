"""Class-membership validation: the paper's taxonomy, mechanically."""

import pytest

from repro.core.validation import check_membership
from repro.protocols import make_protocol, protocol_names
from repro.verify.mutations import ALL_MUTANTS


class TestClassMembers:
    """Abstract: "the Berkeley protocol and the Dragon protocol fall
    within this class"."""

    @pytest.mark.parametrize(
        "name",
        [
            "moesi",
            "moesi-invalidate",
            "moesi-update",
            "moesi-random",
            "moesi-round-robin",
            "moesi-adaptive-threshold",
            "moesi-adaptive-competitive",
        ],
    )
    def test_moesi_variants_are_full_members(self, name):
        report = check_membership(make_protocol(name))
        assert report.is_full_member, report.summary()

    def test_berkeley_is_member(self):
        report = check_membership(make_protocol("berkeley"))
        assert report.is_member and not report.issues

    def test_berkeley_needs_extension(self):
        """Berkeley only defines bus columns 5-6; the rest are holes."""
        report = check_membership(make_protocol("berkeley"))
        assert not report.is_full_member
        assert report.uncovered_bus_events

    def test_dragon_is_member(self):
        report = check_membership(make_protocol("dragon"))
        assert report.is_member and not report.issues

    def test_dragon_needs_extension(self):
        report = check_membership(make_protocol("dragon"))
        notes = {event.note for _, event in report.uncovered_bus_events}
        # Dragon's own algorithm generates only columns 5 and 8.
        assert notes == {6, 7, 9, 10}

    @pytest.mark.parametrize(
        "name",
        ["write-through", "write-through-alloc", "write-through-noalloc-nobc"],
    )
    def test_write_through_variants_are_full_members(self, name):
        report = check_membership(make_protocol(name))
        assert report.is_full_member, report.summary()

    @pytest.mark.parametrize("name", ["non-caching", "non-caching-bc"])
    def test_non_caching_is_full_member(self, name):
        report = check_membership(make_protocol(name))
        assert report.is_full_member


class TestAdaptedProtocols:
    """Abstract: "The Illinois, Firefly and Write-Once protocols can be
    adapted ... the Futurebus currently do[es] not support those protocols
    without adaptation"."""

    @pytest.mark.parametrize("name", ["write-once", "illinois", "firefly"])
    def test_adapted_not_members(self, name):
        report = check_membership(make_protocol(name))
        assert report.is_adapted
        assert not report.is_member

    def test_illinois_uses_busy_only(self):
        """Illinois is in-class except for needing the BS abort."""
        report = check_membership(make_protocol("illinois"))
        assert report.uses_busy and not report.issues

    def test_write_once_out_of_class_write(self):
        """Write-Once's first-write ("E,CA,IM,W") is out of class."""
        report = check_membership(make_protocol("write-once"))
        issues = [str(i) for i in report.issues]
        assert any("E,CA,IM,W" in text for text in issues)

    def test_firefly_out_of_class_write(self):
        """Firefly's shared write lands CH:S/E, not CH:O/M."""
        report = check_membership(make_protocol("firefly"))
        issues = [str(i) for i in report.issues]
        assert any("CH:S/E,CA,IM,BC,W" in text for text in issues)


class TestMutantsRejected:
    """Every single-cell mutant must fail membership statically."""

    @pytest.mark.parametrize(
        "mutant_cls", ALL_MUTANTS, ids=lambda c: c.__name__
    )
    def test_mutant_not_full_member(self, mutant_cls):
        report = check_membership(mutant_cls())
        assert report.issues, f"{mutant_cls.__name__} slipped through"


class TestReportShape:
    def test_summary_mentions_name(self):
        report = check_membership(make_protocol("berkeley"))
        assert report.summary().startswith("Berkeley:")

    def test_every_registered_protocol_classifies(self):
        """No protocol crashes the validator; each lands in a bucket."""
        for name in protocol_names():
            report = check_membership(make_protocol(name))
            assert report.is_member or report.is_adapted or report.issues

    def test_issue_str_contains_cell(self):
        report = check_membership(make_protocol("write-once"))
        assert report.issues
        text = str(report.issues[0])
        assert "state" in text and "event" in text

"""The verification matrix (experiment E1): the paper's compatibility
claims, exhaustively checked, with positive and negative controls."""

import pytest

from repro.verify.explorer import explore
from repro.verify.mixes import (
    class_member_mixes,
    homogeneous_foreign,
    incompatible_mixes,
    mutant_mixes,
    run_matrix,
)


class TestClassMemberMixes:
    """Section 3.4: any mix of class members stays consistent."""

    @pytest.mark.parametrize(
        "case",
        class_member_mixes(),
        ids=lambda c: "+".join(str(s) for s in c.specs),
    )
    def test_consistent(self, case):
        result = case.run()
        assert result.consistent, result.violations[:3]
        assert result.complete


class TestHomogeneousForeign:
    """Sections 4.3-4.5: BS-adapted protocols work among themselves."""

    @pytest.mark.parametrize(
        "case",
        homogeneous_foreign(),
        ids=lambda c: "+".join(str(s) for s in c.specs),
    )
    def test_consistent(self, case):
        result = case.run()
        assert result.consistent and result.complete


class TestIncompatibleMixes:
    """Foreign protocols naively mixed with class members must fail --
    either a protocol gap or a genuine stale-data violation."""

    @pytest.mark.parametrize(
        "case",
        incompatible_mixes(),
        ids=lambda c: "+".join(str(s) for s in c.specs),
    )
    def test_violation_found(self, case):
        result = case.run()
        assert not result.consistent

    def test_write_once_violation_is_semantic_not_just_a_gap(self):
        """Write-Once against MOESI breaks *even where its table is
        defined*: stale memory with no owner."""
        result = explore(["write-once", "moesi"])
        semantic = [
            v for v in result.violations if "memory-current" in v.error
        ]
        assert semantic


class TestMutants:
    @pytest.mark.parametrize(
        "case", mutant_mixes(), ids=lambda c: c.label
    )
    def test_mutant_caught(self, case):
        result = case.run()
        assert not result.consistent, f"{case.label} was not caught"


class TestRunMatrix:
    def test_rows_record_expectations(self):
        rows = run_matrix(class_member_mixes()[:2])
        assert all(r["ok"] for r in rows)
        assert all(r["expected"] == "consistent" for r in rows)

    def test_full_matrix_all_ok(self):
        cases = (
            class_member_mixes()
            + homogeneous_foreign()
            + incompatible_mixes()
            + mutant_mixes()
        )
        rows = run_matrix(cases)
        assert all(r["ok"] for r in rows), [
            r for r in rows if not r["ok"]
        ]

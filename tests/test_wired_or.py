"""Open-collector wired-OR line model (section 2.2)."""

import pytest

from repro.bus.wired_or import WiredOrLine, all_released


class TestBasicSemantics:
    def test_initially_released(self):
        assert not WiredOrLine("L").asserted

    def test_single_driver_asserts(self):
        line = WiredOrLine("L")
        line.assert_("a", 1.0)
        assert line.asserted

    def test_any_driver_holds_line_low(self):
        """One foot on the hose stops the flow."""
        line = WiredOrLine("L")
        line.assert_("a", 1.0)
        line.assert_("b", 2.0)
        line.release("a", 3.0)
        assert line.asserted  # b still drives

    def test_rises_only_when_all_release(self):
        line = WiredOrLine("L")
        for driver in "abc":
            line.assert_(driver, 0.0)
        line.release("a", 1.0)
        line.release("b", 2.0)
        assert line.asserted
        line.release("c", 3.0)
        assert not line.asserted

    def test_release_of_non_driver_is_noop(self):
        line = WiredOrLine("L")
        line.assert_("a", 1.0)
        line.release("ghost", 2.0)
        assert line.asserted

    def test_time_must_not_go_backwards(self):
        line = WiredOrLine("L")
        line.assert_("a", 5.0)
        with pytest.raises(ValueError, match="backwards"):
            line.release("a", 4.0)

    def test_all_released_helper(self):
        a, b = WiredOrLine("A"), WiredOrLine("B")
        a.assert_("x", 0.0)
        assert not all_released([a, b])
        a.release("x", 1.0)
        assert all_released([a, b])


class TestHistory:
    def test_history_records_edges_not_driver_changes(self):
        line = WiredOrLine("L")
        line.assert_("a", 1.0)
        line.assert_("b", 2.0)  # no edge: already low
        line.release("a", 3.0)  # no edge: b holds
        line.release("b", 4.0)  # rising edge
        times = [(s.time, s.asserted) for s in line.history]
        assert times == [(0.0, False), (1.0, True), (4.0, False)]

    def test_raw_level_at(self):
        line = WiredOrLine("L")
        line.assert_("a", 10.0)
        line.release("a", 20.0)
        assert not line.raw_level_at(5.0)
        assert line.raw_level_at(15.0)
        assert not line.raw_level_at(25.0)


class TestWiredOrGlitch:
    def test_glitch_recorded_on_partial_release(self):
        line = WiredOrLine("L", {"a": 0.0, "b": 10.0})
        line.assert_("a", 0.0)
        line.assert_("b", 0.0)
        line.release("a", 5.0)
        assert len(line.glitches) == 1
        glitch = line.glitches[0]
        assert glitch.releasing_driver == "a"
        assert glitch.remaining_driver == "b"

    def test_glitch_grows_with_distance(self):
        near = WiredOrLine("N", {"a": 0.0, "b": 1.0})
        far = WiredOrLine("F", {"a": 0.0, "b": 30.0})
        for line in (near, far):
            line.assert_("a", 0.0)
            line.assert_("b", 0.0)
            line.release("a", 5.0)
        assert far.glitches[0].duration > near.glitches[0].duration
        assert far.glitches[0].amplitude > near.glitches[0].amplitude

    def test_final_release_is_clean(self):
        line = WiredOrLine("L")
        line.assert_("a", 0.0)
        line.release("a", 5.0)
        assert line.glitches == ()
        assert line.rose_clean()


class TestInertialFilter:
    """The asymmetric low-pass filter (the 25 ns penalty)."""

    def test_assertion_passes_immediately(self):
        line = WiredOrLine("L", filter_window=25.0)
        line.assert_("a", 10.0)
        assert line.observed_level_at(10.0)

    def test_release_believed_only_after_window(self):
        line = WiredOrLine("L", filter_window=25.0)
        line.assert_("a", 0.0)
        line.release("a", 100.0)
        assert line.observed_level_at(110.0)       # still looks asserted
        assert not line.observed_level_at(125.0)   # window elapsed

    def test_release_observed_time(self):
        line = WiredOrLine("L", filter_window=25.0)
        assert line.release_observed_time(100.0) == 125.0

    def test_short_pulse_filtered(self):
        """A release shorter than the window never becomes visible."""
        line = WiredOrLine("L", filter_window=25.0)
        line.assert_("a", 0.0)
        line.release("a", 50.0)
        line.assert_("a", 60.0)   # re-asserted within the window
        assert line.observed_level_at(74.0)
        assert line.observed_level_at(90.0)
